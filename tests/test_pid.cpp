// Unit tests for the PID controller (Eqn. 4) and Ziegler-Nichols gain
// computation (Eqns. 5-7).
#include <gtest/gtest.h>

#include <stdexcept>

#include "core/pid.hpp"
#include "core/ziegler_nichols.hpp"
#include "metrics/oscillation.hpp"

namespace fsc {
namespace {

PidController make(PidGains g, double offset = 1000.0, double lo = 0.0,
                   double hi = 10000.0) {
  return PidController(g, offset, lo, hi);
}

TEST(Pid, ProportionalOnly) {
  auto pid = make(PidGains{10.0, 0.0, 0.0});
  EXPECT_DOUBLE_EQ(pid.step(2.0), 1000.0 + 20.0);
  EXPECT_DOUBLE_EQ(pid.step(-3.0), 1000.0 - 30.0);
}

TEST(Pid, IntegralAccumulates) {
  auto pid = make(PidGains{0.0, 1.0, 0.0});
  EXPECT_DOUBLE_EQ(pid.step(2.0), 1002.0);
  EXPECT_DOUBLE_EQ(pid.step(2.0), 1004.0);
  EXPECT_DOUBLE_EQ(pid.step(2.0), 1006.0);
}

TEST(Pid, DerivativeRespondsToChange) {
  auto pid = make(PidGains{0.0, 0.0, 5.0});
  // First step has no previous error: derivative contribution 0.
  EXPECT_DOUBLE_EQ(pid.step(2.0), 1000.0);
  // Error jumps by 3: derivative adds 15.
  EXPECT_DOUBLE_EQ(pid.step(5.0), 1015.0);
  // Constant error: derivative contribution vanishes.
  EXPECT_DOUBLE_EQ(pid.step(5.0), 1000.0);
}

TEST(Pid, Equation4Composition) {
  // One step with all three terms and a known history.
  auto pid = make(PidGains{2.0, 0.5, 4.0});
  pid.step(1.0);  // integral = 1, prev = 1
  const double out = pid.step(3.0);
  // offset + KP*3 + KI*(1+3) + KD*(3-1) = 1000 + 6 + 2 + 8 = 1016.
  EXPECT_DOUBLE_EQ(out, 1016.0);
}

TEST(Pid, OutputClamped) {
  auto pid = make(PidGains{1000.0, 0.0, 0.0}, 1000.0, 500.0, 8500.0);
  EXPECT_DOUBLE_EQ(pid.step(100.0), 8500.0);
  EXPECT_DOUBLE_EQ(pid.step(-100.0), 500.0);
}

TEST(Pid, AntiWindupBoundsIntegral) {
  auto pid = make(PidGains{0.0, 1.0, 0.0}, 0.0, 0.0, 100.0);
  for (int i = 0; i < 1000; ++i) pid.step(50.0);
  // Integral alone may not exceed the output span / KI = 100.
  EXPECT_LE(pid.integral(), 100.0 + 1e-9);
  // Recovery is quick: a few negative errors pull the output down.
  for (int i = 0; i < 5; ++i) pid.step(-50.0);
  EXPECT_LT(pid.integral(), 100.0);
}

TEST(Pid, ResetClearsDynamicState) {
  auto pid = make(PidGains{1.0, 1.0, 1.0});
  pid.step(5.0);
  pid.step(7.0);
  pid.reset();
  EXPECT_DOUBLE_EQ(pid.integral(), 0.0);
  // After reset the derivative term sees no previous error again.
  EXPECT_DOUBLE_EQ(pid.step(2.0), 1000.0 + 2.0 + 2.0);  // P + I only
}

TEST(Pid, SetGainsPreservesState) {
  auto pid = make(PidGains{0.0, 1.0, 0.0});
  pid.step(3.0);  // integral = 3
  pid.set_gains(PidGains{0.0, 2.0, 0.0});
  EXPECT_DOUBLE_EQ(pid.step(0.0), 1000.0 + 2.0 * 3.0);
}

TEST(Pid, SetOffsetRebases) {
  auto pid = make(PidGains{1.0, 0.0, 0.0});
  pid.set_offset(2000.0);
  EXPECT_DOUBLE_EQ(pid.step(1.0), 2001.0);
}

TEST(Pid, RejectsEmptyOutputRange) {
  EXPECT_THROW(PidController(PidGains{}, 0.0, 10.0, 10.0), std::invalid_argument);
  EXPECT_THROW(PidController(PidGains{}, 0.0, 10.0, 5.0), std::invalid_argument);
}

// ----------------------------------------------------- Ziegler-Nichols gains

TEST(ZnGains, Equations5to7) {
  const auto g = ziegler_nichols_gains(UltimateGain{10.0, 120.0});
  EXPECT_DOUBLE_EQ(g.kp, 6.0);             // 0.6 Ku
  EXPECT_DOUBLE_EQ(g.ki, 6.0 * 2.0 / 120.0);   // KP * 2/Pu
  EXPECT_DOUBLE_EQ(g.kd, 6.0 * 120.0 / 8.0);   // KP * Pu/8
}

TEST(ZnGains, ScalesLinearlyWithKu) {
  const auto a = ziegler_nichols_gains(UltimateGain{10.0, 100.0});
  const auto b = ziegler_nichols_gains(UltimateGain{20.0, 100.0});
  EXPECT_DOUBLE_EQ(b.kp, 2.0 * a.kp);
  EXPECT_DOUBLE_EQ(b.ki, 2.0 * a.ki);
  EXPECT_DOUBLE_EQ(b.kd, 2.0 * a.kd);
}

TEST(ZnGains, RejectsNonPositiveInputs) {
  EXPECT_THROW(ziegler_nichols_gains(UltimateGain{0.0, 100.0}), std::invalid_argument);
  EXPECT_THROW(ziegler_nichols_gains(UltimateGain{1.0, 0.0}), std::invalid_argument);
}

// A synthetic unstable-able loop for the ultimate-gain search: a discrete
// first-order lag plant with transport delay, controlled by P-only
// feedback.  High kp destabilises it, low kp converges, so the search has
// a genuine boundary to find.
std::vector<double> delayed_lag_experiment(double kp) {
  const int delay = 3;
  const double a = 0.7;  // pole of the lag
  std::vector<double> buffer(delay, 0.0);
  double y = 1.0;  // initial perturbation
  std::vector<double> series;
  for (int k = 0; k < 400; ++k) {
    series.push_back(y);
    const double delayed_y = buffer[k % delay];
    buffer[k % delay] = y;
    const double u = -kp * delayed_y;
    y = a * y + (1.0 - a) * u;
  }
  return series;
}

TEST(ZnSearch, FindsBoundaryOfDelayedLag) {
  ZnSearchParams p;
  p.kp_initial = 0.1;
  p.sample_period_s = 1.0;
  p.oscillation_hysteresis = 0.05;
  const auto ug = find_ultimate_gain(delayed_lag_experiment, p);
  ASSERT_TRUE(ug.has_value());
  EXPECT_GT(ug->ku, 0.1);
  EXPECT_LT(ug->ku, 100.0);
  EXPECT_GT(ug->pu_seconds, 0.0);
  // Verify the boundary property: slightly below Ku converges, slightly
  // above oscillates.
  OscillationParams op;
  op.hysteresis = 0.05;
  const auto below = analyse_oscillation(delayed_lag_experiment(0.8 * ug->ku), op);
  const auto above = analyse_oscillation(delayed_lag_experiment(1.3 * ug->ku), op);
  EXPECT_EQ(below.verdict, OscillationVerdict::kConverged);
  EXPECT_NE(above.verdict, OscillationVerdict::kConverged);
}

TEST(ZnSearch, UnconditionallyStableLoopReturnsNullopt) {
  // A pure decaying plant that ignores the controller cannot oscillate.
  const auto stable = [](double) {
    std::vector<double> s;
    double y = 1.0;
    for (int i = 0; i < 100; ++i) {
      s.push_back(y);
      y *= 0.9;
    }
    return s;
  };
  ZnSearchParams p;
  p.kp_max = 1000.0;
  EXPECT_FALSE(find_ultimate_gain(stable, p).has_value());
}

TEST(ZnSearch, TunePidProducesPositiveGains) {
  ZnSearchParams p;
  p.kp_initial = 0.1;
  p.sample_period_s = 1.0;
  p.oscillation_hysteresis = 0.05;
  const auto gains = tune_pid(delayed_lag_experiment, p);
  ASSERT_TRUE(gains.has_value());
  EXPECT_GT(gains->kp, 0.0);
  EXPECT_GT(gains->ki, 0.0);
  EXPECT_GT(gains->kd, 0.0);
}

TEST(ZnSearch, RejectsBadSearchParams) {
  ZnSearchParams p;
  p.kp_initial = 0.0;
  EXPECT_THROW(find_ultimate_gain(delayed_lag_experiment, p), std::invalid_argument);
  p = ZnSearchParams{};
  p.growth_factor = 1.0;
  EXPECT_THROW(find_ultimate_gain(delayed_lag_experiment, p), std::invalid_argument);
}

}  // namespace
}  // namespace fsc
