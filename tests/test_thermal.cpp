// Unit tests for src/thermal: heat-sink resistance law, RC node
// integration, and the coupled two-node server model (Eqns. 2-3).
#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "thermal/heat_sink.hpp"
#include "thermal/rc_node.hpp"
#include "thermal/server_thermal_model.hpp"

namespace fsc {
namespace {

// ---------------------------------------------------------------- HeatSinkModel

TEST(HeatSink, Table1ResistanceFormula) {
  const auto hs = HeatSinkModel::table1_defaults();
  // Rhs(v) = 0.141 + 132.51 v^-0.923, spot-checked against the formula.
  for (double v : {1000.0, 2000.0, 6000.0, 8500.0}) {
    const double expected = 0.141 + 132.51 * std::pow(v, -0.923);
    EXPECT_NEAR(hs.resistance(v), expected, 1e-12) << "v=" << v;
  }
}

TEST(HeatSink, ResistanceDecreasesWithSpeed) {
  const auto hs = HeatSinkModel::table1_defaults();
  double prev = hs.resistance(500.0);
  for (double v = 1000.0; v <= 8500.0; v += 500.0) {
    const double r = hs.resistance(v);
    EXPECT_LT(r, prev) << "v=" << v;
    prev = r;
  }
}

TEST(HeatSink, ResistanceApproachesAsymptote) {
  const auto hs = HeatSinkModel::table1_defaults();
  EXPECT_GT(hs.resistance(8500.0), 0.141);
  EXPECT_LT(hs.resistance(8500.0), 0.141 + 0.05);
}

TEST(HeatSink, LowSpeedClampAtOneRpm) {
  const auto hs = HeatSinkModel::table1_defaults();
  EXPECT_DOUBLE_EQ(hs.resistance(0.0), hs.resistance(1.0));
  EXPECT_DOUBLE_EQ(hs.resistance(0.5), hs.resistance(1.0));
}

TEST(HeatSink, CapacitanceMatchesTable1TimeConstant) {
  const auto hs = HeatSinkModel::table1_defaults();
  // Table I: 60 s time constant at max airflow.
  EXPECT_NEAR(hs.time_constant(8500.0), 60.0, 1e-9);
}

TEST(HeatSink, TimeConstantGrowsAtLowSpeed) {
  const auto hs = HeatSinkModel::table1_defaults();
  EXPECT_GT(hs.time_constant(1000.0), hs.time_constant(8500.0));
}

TEST(HeatSink, SlopeMatchesNumericalDerivative) {
  const auto hs = HeatSinkModel::table1_defaults();
  for (double v : {1500.0, 4000.0, 7000.0}) {
    const double h = 1e-3;
    const double numeric = (hs.resistance(v + h) - hs.resistance(v - h)) / (2.0 * h);
    EXPECT_NEAR(hs.resistance_slope(v), numeric, std::fabs(numeric) * 1e-5);
  }
}

TEST(HeatSink, SpeedForResistanceRoundTrip) {
  const auto hs = HeatSinkModel::table1_defaults();
  for (double v : {1200.0, 3300.0, 7700.0}) {
    EXPECT_NEAR(hs.speed_for_resistance(hs.resistance(v)), v, 1e-6);
  }
}

TEST(HeatSink, SpeedForUnreachableResistanceThrows) {
  const auto hs = HeatSinkModel::table1_defaults();
  EXPECT_THROW(hs.speed_for_resistance(0.141), std::invalid_argument);
  EXPECT_THROW(hs.speed_for_resistance(0.05), std::invalid_argument);
}

TEST(HeatSink, RejectsBadParameters) {
  EXPECT_THROW(HeatSinkModel(-0.1, 100.0, 0.9, 8500.0, 60.0), std::invalid_argument);
  EXPECT_THROW(HeatSinkModel(0.1, -1.0, 0.9, 8500.0, 60.0), std::invalid_argument);
  EXPECT_THROW(HeatSinkModel(0.1, 100.0, 0.0, 8500.0, 60.0), std::invalid_argument);
  EXPECT_THROW(HeatSinkModel(0.1, 100.0, 0.9, 0.0, 60.0), std::invalid_argument);
  EXPECT_THROW(HeatSinkModel(0.1, 100.0, 0.9, 8500.0, 0.0), std::invalid_argument);
}

// ---------------------------------------------------------------- RcNode

TEST(RcNode, ExponentialApproach) {
  RcNode node(20.0);
  // After one time constant the gap closes to 1/e.
  node.step(/*ss=*/120.0, /*tau=*/10.0, /*dt=*/10.0);
  EXPECT_NEAR(node.temperature(), 120.0 - 100.0 * std::exp(-1.0), 1e-9);
}

TEST(RcNode, ManySmallStepsMatchOneBigStep) {
  RcNode a(20.0), b(20.0);
  a.step(100.0, 5.0, 10.0);
  for (int i = 0; i < 1000; ++i) b.step(100.0, 5.0, 0.01);
  // Exact exponential integration is step-size independent.
  EXPECT_NEAR(a.temperature(), b.temperature(), 1e-9);
}

TEST(RcNode, ZeroDtIsNoop) {
  RcNode node(42.0);
  node.step(100.0, 1.0, 0.0);
  EXPECT_DOUBLE_EQ(node.temperature(), 42.0);
}

TEST(RcNode, ConvergesToSteadyState) {
  RcNode node(0.0);
  node.step(77.0, 1.0, 1000.0);
  EXPECT_NEAR(node.temperature(), 77.0, 1e-9);
}

TEST(RcNode, NeverOvershootsFirstOrder) {
  RcNode node(20.0);
  for (int i = 0; i < 100; ++i) {
    node.step(80.0, 3.0, 0.5);
    EXPECT_LE(node.temperature(), 80.0 + 1e-12);
  }
}

TEST(RcNode, RejectsBadArguments) {
  RcNode node(0.0);
  EXPECT_THROW(node.step(1.0, 0.0, 1.0), std::invalid_argument);
  EXPECT_THROW(node.step(1.0, -1.0, 1.0), std::invalid_argument);
  EXPECT_THROW(node.step(1.0, 1.0, -0.1), std::invalid_argument);
}

TEST(RcNode, SetTemperatureOverrides) {
  RcNode node(10.0);
  node.set_temperature(99.0);
  EXPECT_DOUBLE_EQ(node.temperature(), 99.0);
}

// ---------------------------------------------------------------- ServerThermalModel

TEST(ServerThermal, SteadyStateEquation3) {
  auto m = ServerThermalModel::table1_defaults();
  // Eqn. 3: Tss_hs = Tamb + Rhs * P (Tamb = 42, R_die = 0.05 per DESIGN.md).
  const double p = 140.0;
  const double v = 3000.0;
  const double r = m.heat_sink().resistance(v);
  EXPECT_NEAR(m.steady_state_heat_sink(p, v), 42.0 + r * p, 1e-12);
  EXPECT_NEAR(m.steady_state_junction(p, v), 42.0 + r * p + 0.05 * p, 1e-12);
}

TEST(ServerThermal, SettleReachesSteadyState) {
  auto m = ServerThermalModel::table1_defaults();
  m.settle(160.0, 4000.0);
  EXPECT_NEAR(m.junction(), m.steady_state_junction(160.0, 4000.0), 1e-12);
  EXPECT_NEAR(m.heat_sink_temperature(), m.steady_state_heat_sink(160.0, 4000.0),
              1e-12);
}

TEST(ServerThermal, StepConvergesToSteadyState) {
  auto m = ServerThermalModel::table1_defaults();
  m.settle(96.0, 2000.0);
  // Hold a new operating point for 10 minutes; the plant must converge.
  for (int i = 0; i < 12000; ++i) m.step(160.0, 2000.0, 0.05);
  EXPECT_NEAR(m.junction(), m.steady_state_junction(160.0, 2000.0), 0.05);
}

TEST(ServerThermal, FasterFanMeansCoolerJunction) {
  auto m = ServerThermalModel::table1_defaults();
  const double p = 140.0;
  EXPECT_GT(m.steady_state_junction(p, 2000.0), m.steady_state_junction(p, 4000.0));
  EXPECT_GT(m.steady_state_junction(p, 4000.0), m.steady_state_junction(p, 8500.0));
}

TEST(ServerThermal, MorePowerMeansHotterJunction) {
  auto m = ServerThermalModel::table1_defaults();
  EXPECT_LT(m.steady_state_junction(96.0, 3000.0),
            m.steady_state_junction(160.0, 3000.0));
}

TEST(ServerThermal, DieRespondsMuchFasterThanHeatSink) {
  auto m = ServerThermalModel::table1_defaults();
  m.settle(96.0, 3000.0);
  const double hs0 = m.heat_sink_temperature();
  const double j0 = m.junction();
  // One second after a power step the die has moved nearly fully toward
  // its quasi-steady state while the heat sink has barely moved.
  for (int i = 0; i < 20; ++i) m.step(160.0, 3000.0, 0.05);
  const double die_move = m.junction() - j0;
  const double hs_move = m.heat_sink_temperature() - hs0;
  EXPECT_GT(die_move, 5.0 * hs_move);
}

TEST(ServerThermal, MinSpeedForLimitIsBoundary) {
  auto m = ServerThermalModel::table1_defaults();
  const double p = 150.0;
  const double limit = 78.0;  // reachable inside the fan envelope at 150 W
  const double v = m.min_speed_for_junction_limit(p, limit);
  EXPECT_LE(m.steady_state_junction(p, v), limit + 1e-6);
  // Just below the boundary speed the limit must be violated (unless the
  // boundary collapsed to the minimum).
  if (v > 1.5) {
    EXPECT_GT(m.steady_state_junction(p, v - 1.0), limit - 1e-6);
  }
}

TEST(ServerThermal, MinSpeedSaturatesAtMaxWhenUnreachable) {
  auto m = ServerThermalModel::table1_defaults();
  // An absurdly low limit cannot be met even at max speed.
  EXPECT_DOUBLE_EQ(m.min_speed_for_junction_limit(160.0, 30.0), 8500.0);
}

TEST(ServerThermal, MinSpeedIsMonotoneInPower) {
  auto m = ServerThermalModel::table1_defaults();
  const double limit = 75.0;
  double prev = 0.0;
  for (double p : {100.0, 120.0, 140.0, 160.0}) {
    const double v = m.min_speed_for_junction_limit(p, limit);
    EXPECT_GE(v, prev) << "p=" << p;
    prev = v;
  }
}

TEST(ServerThermal, OperatingWindowMatchesDesignIntent) {
  // DESIGN.md SS5: at T_ref = 75 C the steady-state fan speed spans roughly
  // 1870 rpm (u = 0.1) to 6000 rpm (u = 0.7) - the paper's 2000-6000 rpm
  // range; a 100 %-load spike cannot hold 75 C even at max fan (it needs
  // the full 8500 rpm and rides just under the 80 C limit); full load at
  // 2000 rpm violates the limit.  This pins the calibration of the
  // unpublished parameters (R_die, T_amb).
  auto m = ServerThermalModel::table1_defaults();
  const double p_low = 96.0 + 64.0 * 0.1;
  const double p_high = 96.0 + 64.0 * 0.7;
  const double p_full = 160.0;
  const double v_low = m.min_speed_for_junction_limit(p_low, 75.0);
  const double v_high = m.min_speed_for_junction_limit(p_high, 75.0);
  const double v_full = m.min_speed_for_junction_limit(p_full, 75.0);
  EXPECT_GT(v_low, 1500.0);
  EXPECT_LT(v_low, 2300.0);
  EXPECT_GT(v_high, 5200.0);
  EXPECT_LT(v_high, 6800.0);
  EXPECT_DOUBLE_EQ(v_full, 8500.0);  // saturated: spike demands max fan
  EXPECT_LT(m.steady_state_junction(p_full, 8500.0), 80.0);
  EXPECT_GT(m.steady_state_junction(160.0, 2000.0), 80.0);
}

TEST(ServerThermal, RejectsNegativeInputs) {
  auto m = ServerThermalModel::table1_defaults();
  EXPECT_THROW(m.step(-1.0, 1000.0, 0.1), std::invalid_argument);
  EXPECT_THROW(m.step(100.0, -1.0, 0.1), std::invalid_argument);
  EXPECT_THROW(m.step(100.0, 1000.0, -0.1), std::invalid_argument);
}

TEST(ServerThermal, ExactIntegrationStepSizeIndependent) {
  auto a = ServerThermalModel::table1_defaults();
  auto b = ServerThermalModel::table1_defaults();
  a.settle(96.0, 2000.0);
  b.settle(96.0, 2000.0);
  // Heat-sink trajectory is step-size independent; the die sees a
  // different (piecewise) heat-sink boundary so tiny deviations are
  // expected but must stay far below the ADC step.
  for (int i = 0; i < 600; ++i) a.step(160.0, 5000.0, 0.1);
  for (int i = 0; i < 6000; ++i) b.step(160.0, 5000.0, 0.01);
  EXPECT_NEAR(a.junction(), b.junction(), 0.05);
  EXPECT_NEAR(a.heat_sink_temperature(), b.heat_sink_temperature(), 1e-6);
}

}  // namespace
}  // namespace fsc
