// Unit tests for the multi-sensor array (I2C population -> lag coupling).
#include <gtest/gtest.h>

#include <stdexcept>

#include "sensor/sensor_array.hpp"

namespace fsc {
namespace {

SensorArray make_array(std::size_t count, double gradient = 2.0,
                       bool quantize = true) {
  static Rng rng(5);
  SensorArrayParams p;
  p.sensor_count = count;
  p.gradient_celsius = gradient;
  p.quantize = quantize;
  return SensorArray(p, I2cBusModel::table1_defaults(), rng);
}

TEST(SensorArray, LagMatchesBusModel) {
  const auto bus = I2cBusModel::table1_defaults();
  EXPECT_DOUBLE_EQ(make_array(100).lag(), bus.lag(100));
  EXPECT_DOUBLE_EQ(make_array(25).lag(), bus.lag(25));
}

TEST(SensorArray, LagGrowsWithPopulation) {
  EXPECT_LT(make_array(25).lag(), make_array(100).lag());
  EXPECT_LT(make_array(100).lag(), make_array(400).lag());
}

TEST(SensorArray, MaxReadingReflectsHottestCore) {
  Rng rng(5);
  SensorArrayParams p;
  p.sensor_count = 8;
  p.gradient_celsius = 4.0;
  p.quantize = false;
  SensorArray a(p, I2cBusModel::table1_defaults(), rng);
  a.reset(70.0);
  // The hottest core sits at the true value; the coolest 4 degC below.
  EXPECT_NEAR(a.read_max(), 70.0, 1e-9);
  EXPECT_NEAR(a.read(0), 66.0, 1e-9);
  EXPECT_LT(a.read_mean(), a.read_max());
}

TEST(SensorArray, ZeroGradientAllAgree) {
  Rng rng(5);
  SensorArrayParams p;
  p.sensor_count = 4;
  p.gradient_celsius = 0.0;
  p.quantize = false;
  SensorArray a(p, I2cBusModel::table1_defaults(), rng);
  a.reset(55.5);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.read(i), 55.5);
  }
  EXPECT_DOUBLE_EQ(a.read_max(), a.read_mean());
}

TEST(SensorArray, ObservationPropagatesAfterLag) {
  Rng rng(5);
  SensorArrayParams p;
  p.sensor_count = 25;  // lag(25) = 4 s
  p.gradient_celsius = 0.0;
  SensorArray a(p, I2cBusModel::table1_defaults(), rng);
  a.reset(50.0);
  EXPECT_NEAR(a.read_max(), 50.0, 1.0);
  // After 2 s the step is still invisible; after 6 s it has arrived.
  for (int i = 0; i < 20; ++i) a.observe(90.0, 0.1);
  EXPECT_NEAR(a.read_max(), 50.0, 1.0);
  for (int i = 0; i < 40; ++i) a.observe(90.0, 0.1);
  EXPECT_NEAR(a.read_max(), 90.0, 1.0);
}

TEST(SensorArray, QuantizationStepReported) {
  EXPECT_DOUBLE_EQ(make_array(8).quantization_step(), 1.0);
  EXPECT_DOUBLE_EQ(make_array(8, 2.0, /*quantize=*/false).quantization_step(), 0.0);
}

TEST(SensorArray, SingleSensorDegenerate) {
  Rng rng(5);
  SensorArrayParams p;
  p.sensor_count = 1;
  p.gradient_celsius = 3.0;
  p.quantize = false;
  SensorArray a(p, I2cBusModel::table1_defaults(), rng);
  a.reset(60.0);
  // A single sensor carries the full (zero-offset) hottest-core reading.
  EXPECT_DOUBLE_EQ(a.read_max(), 60.0);
  EXPECT_EQ(a.size(), 1u);
}

TEST(SensorArray, OutOfRangeIndexThrows) {
  auto a = make_array(4);
  EXPECT_THROW(a.read(4), std::out_of_range);
}

TEST(SensorArray, RejectsBadParameters) {
  Rng rng(5);
  SensorArrayParams p;
  p.sensor_count = 0;
  EXPECT_THROW(SensorArray(p, I2cBusModel::table1_defaults(), rng),
               std::invalid_argument);
  p = SensorArrayParams{};
  p.gradient_celsius = -1.0;
  EXPECT_THROW(SensorArray(p, I2cBusModel::table1_defaults(), rng),
               std::invalid_argument);
}

}  // namespace
}  // namespace fsc
