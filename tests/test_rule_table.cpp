// Exhaustive unit tests for the rule-based coordination table (Table II):
// all 9 cells, plus tolerance behaviour and the apply step.
#include <gtest/gtest.h>

#include <string>

#include "core/rule_table.hpp"

namespace fsc {
namespace {

// Fixed current operating point for all cases.
constexpr double kFan = 3000.0;
constexpr double kCap = 0.7;

// Proposed values expressing each row/column of Table II.
constexpr double kFanDown = 2500.0, kFanSame = 3000.0, kFanUp = 3500.0;
constexpr double kCapDown = 0.6, kCapSame = 0.7, kCapUp = 0.8;

TEST(Table2, Cell_FanDown_CapDown) {
  EXPECT_EQ(coordinate(kFan, kFanDown, kCap, kCapDown), CoordinationAction::kFanDown);
}

TEST(Table2, Cell_FanDown_CapSame) {
  EXPECT_EQ(coordinate(kFan, kFanDown, kCap, kCapSame), CoordinationAction::kFanDown);
}

TEST(Table2, Cell_FanDown_CapUp) {
  // Fan decrease yields to a cap increase (performance first).
  EXPECT_EQ(coordinate(kFan, kFanDown, kCap, kCapUp), CoordinationAction::kCapUp);
}

TEST(Table2, Cell_FanSame_CapDown) {
  EXPECT_EQ(coordinate(kFan, kFanSame, kCap, kCapDown), CoordinationAction::kCapDown);
}

TEST(Table2, Cell_FanSame_CapSame) {
  EXPECT_EQ(coordinate(kFan, kFanSame, kCap, kCapSame), CoordinationAction::kNone);
}

TEST(Table2, Cell_FanSame_CapUp) {
  EXPECT_EQ(coordinate(kFan, kFanSame, kCap, kCapUp), CoordinationAction::kCapUp);
}

TEST(Table2, Cell_FanUp_CapDown) {
  // A fan increase always wins.
  EXPECT_EQ(coordinate(kFan, kFanUp, kCap, kCapDown), CoordinationAction::kFanUp);
}

TEST(Table2, Cell_FanUp_CapSame) {
  EXPECT_EQ(coordinate(kFan, kFanUp, kCap, kCapSame), CoordinationAction::kFanUp);
}

TEST(Table2, Cell_FanUp_CapUp) {
  EXPECT_EQ(coordinate(kFan, kFanUp, kCap, kCapUp), CoordinationAction::kFanUp);
}

TEST(Table2, SubToleranceChangesCountAsEqual) {
  // rpm tolerance default 1e-6; cap tolerance 1e-9.
  EXPECT_EQ(coordinate(kFan, kFan + 1e-9, kCap, kCap - 1e-12),
            CoordinationAction::kNone);
}

TEST(Table2, CustomTolerances) {
  // With a 100 rpm tolerance, a 50 rpm change is "same".
  EXPECT_EQ(coordinate(kFan, kFan + 50.0, kCap, kCapUp, 100.0, 1e-9),
            CoordinationAction::kCapUp);
}

TEST(Table2, ApplyTakesExactlyOneProposal) {
  // Fan down + cap up: cap wins; fan must stay at the CURRENT value.
  const auto d = coordinate_and_apply(kFan, kFanDown, kCap, kCapUp);
  EXPECT_EQ(d.action, CoordinationAction::kCapUp);
  EXPECT_DOUBLE_EQ(d.fan_speed, kFan);
  EXPECT_DOUBLE_EQ(d.cpu_cap, kCapUp);
}

TEST(Table2, ApplyFanUpKeepsCapCurrent) {
  const auto d = coordinate_and_apply(kFan, kFanUp, kCap, kCapDown);
  EXPECT_EQ(d.action, CoordinationAction::kFanUp);
  EXPECT_DOUBLE_EQ(d.fan_speed, kFanUp);
  EXPECT_DOUBLE_EQ(d.cpu_cap, kCap);  // cap proposal dropped
}

TEST(Table2, ApplyNoneKeepsBoth) {
  const auto d = coordinate_and_apply(kFan, kFanSame, kCap, kCapSame);
  EXPECT_EQ(d.action, CoordinationAction::kNone);
  EXPECT_DOUBLE_EQ(d.fan_speed, kFan);
  EXPECT_DOUBLE_EQ(d.cpu_cap, kCap);
}

TEST(Table2, OnlyOneVariableEverChanges) {
  // Property over a grid of proposals: post-coordination state differs
  // from the current state in at most one variable.
  for (double fp : {kFanDown, kFanSame, kFanUp}) {
    for (double cp : {kCapDown, kCapSame, kCapUp}) {
      const auto d = coordinate_and_apply(kFan, fp, kCap, cp);
      const bool fan_changed = d.fan_speed != kFan;
      const bool cap_changed = d.cpu_cap != kCap;
      EXPECT_FALSE(fan_changed && cap_changed)
          << "fan proposal " << fp << ", cap proposal " << cp;
    }
  }
}

TEST(Table2, ToStringNamesAllActions) {
  EXPECT_EQ(std::string(to_string(CoordinationAction::kNone)), "none");
  EXPECT_EQ(std::string(to_string(CoordinationAction::kFanDown)), "fan-down");
  EXPECT_EQ(std::string(to_string(CoordinationAction::kFanUp)), "fan-up");
  EXPECT_EQ(std::string(to_string(CoordinationAction::kCapDown)), "cap-down");
  EXPECT_EQ(std::string(to_string(CoordinationAction::kCapUp)), "cap-up");
}

}  // namespace
}  // namespace fsc
