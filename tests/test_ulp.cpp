// util/ulp.hpp: the ULP-distance helpers that gate the SIMD kernel's
// equivalence suites.  These must be exactly right — a broken distance
// would silently loosen every ULP-bounded comparison in test_simd.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "util/ulp.hpp"

namespace fsc {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();
constexpr double kNan = std::numeric_limits<double>::quiet_NaN();

TEST(UlpDistance, ZeroForEqualValues) {
  EXPECT_EQ(ulp_distance(1.0, 1.0), 0u);
  EXPECT_EQ(ulp_distance(-3.5e100, -3.5e100), 0u);
  EXPECT_EQ(ulp_distance(kInf, kInf), 0u);
}

TEST(UlpDistance, SignedZerosCoincide) {
  EXPECT_EQ(ulp_distance(0.0, -0.0), 0u);
  // The first positive and first negative subnormal are each one step from
  // the shared zero point, two steps from each other.
  const double tiny = std::numeric_limits<double>::denorm_min();
  EXPECT_EQ(ulp_distance(0.0, tiny), 1u);
  EXPECT_EQ(ulp_distance(-tiny, 0.0), 1u);
  EXPECT_EQ(ulp_distance(-tiny, tiny), 2u);
}

TEST(UlpDistance, NextafterNeighboursAreOneApart) {
  for (double x : {1.0, -1.0, 0.3, 8500.0, 1e-300, -2.5e17}) {
    EXPECT_EQ(ulp_distance(x, std::nextafter(x, kInf)), 1u) << x;
    EXPECT_EQ(ulp_distance(x, std::nextafter(x, -kInf)), 1u) << x;
  }
}

TEST(UlpDistance, SymmetricAndMonotone) {
  EXPECT_EQ(ulp_distance(1.0, 2.0), ulp_distance(2.0, 1.0));
  // 1.0 -> 2.0 spans exactly 2^52 representable steps (one binade).
  EXPECT_EQ(ulp_distance(1.0, 2.0), 1ull << 52);
  // Wider interval, strictly larger distance.
  EXPECT_GT(ulp_distance(1.0, 4.0), ulp_distance(1.0, 2.0));
  // Crossing zero accumulates both sides.
  EXPECT_EQ(ulp_distance(-1.0, 1.0), 2 * ulp_distance(0.0, 1.0));
}

TEST(UlpDistance, NanIsInfinitelyFarFromEverything) {
  EXPECT_EQ(ulp_distance(kNan, 1.0), kUlpInfinite);
  EXPECT_EQ(ulp_distance(0.0, kNan), kUlpInfinite);
  EXPECT_EQ(ulp_distance(kNan, kNan), kUlpInfinite);
}

TEST(WithinUlp, BoundsInclusive) {
  const double up4 = std::nextafter(
      std::nextafter(std::nextafter(std::nextafter(1.0, kInf), kInf), kInf),
      kInf);
  EXPECT_TRUE(within_ulp(1.0, up4, 4));
  EXPECT_FALSE(within_ulp(1.0, up4, 3));
  EXPECT_FALSE(within_ulp(kNan, kNan, kUlpInfinite - 1));
}

TEST(WithinUlpOrAbs, AbsoluteFloorRescuesNearZeroNoise) {
  // 1e-20 vs 0: astronomically many ULPs apart, but within any sane
  // absolute tolerance — the or-abs form passes, the pure form does not.
  EXPECT_FALSE(within_ulp(1e-20, 0.0, 1u << 20));
  EXPECT_TRUE(within_ulp_or_abs(1e-20, 0.0, 4, 1e-12));
  // Large values: the ULP bound does the work, the abs floor is irrelevant.
  EXPECT_TRUE(within_ulp_or_abs(8500.0, std::nextafter(8500.0, kInf), 1, 0.0));
  EXPECT_FALSE(within_ulp_or_abs(8500.0, 8501.0, 4, 1e-12));
  EXPECT_FALSE(within_ulp_or_abs(kNan, 0.0, kUlpInfinite, kInf));
}

}  // namespace
}  // namespace fsc
