// Property-based tests: invariants checked over parameter sweeps
// (TEST_P / INSTANTIATE_TEST_SUITE_P).
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <tuple>

#include "core/adaptive_pid_fan.hpp"
#include "core/cpu_capper.hpp"
#include "core/fan_only_policy.hpp"
#include "core/rule_table.hpp"
#include "core/solutions.hpp"
#include "sensor/quantizer.hpp"
#include "sim/experiment.hpp"
#include "sim/simulation.hpp"
#include "thermal/server_thermal_model.hpp"
#include "workload/synthetic.hpp"

namespace fsc {
namespace {

// ---------------------------------------------------------------- thermal map

class ThermalMonotonicity : public ::testing::TestWithParam<double> {};

TEST_P(ThermalMonotonicity, JunctionDecreasesWithFanSpeed) {
  const double watts = GetParam();
  const auto m = ServerThermalModel::table1_defaults();
  double prev = 1e300;
  for (double v = 1500.0; v <= 8500.0; v += 250.0) {
    const double t = m.steady_state_junction(watts, v);
    EXPECT_LT(t, prev) << "p=" << watts << " v=" << v;
    prev = t;
  }
}

TEST_P(ThermalMonotonicity, MinSafeSpeedInverseConsistent) {
  const double watts = GetParam();
  const auto m = ServerThermalModel::table1_defaults();
  for (double limit : {70.0, 75.0, 80.0, 85.0}) {
    const double v = m.min_speed_for_junction_limit(watts, limit);
    if (v < 8500.0 - 1e-3 && v > 1.0 + 1e-3) {
      EXPECT_LE(m.steady_state_junction(watts, v), limit + 1e-5);
      EXPECT_GE(m.steady_state_junction(watts, v * 0.98), limit - 0.5);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(PowerLevels, ThermalMonotonicity,
                         ::testing::Values(96.0, 110.0, 128.0, 145.0, 160.0));

// ---------------------------------------------------------------- quantizer

class QuantizerProperty : public ::testing::TestWithParam<unsigned> {};

TEST_P(QuantizerProperty, ErrorBoundAndMonotonicity) {
  const unsigned bits = GetParam();
  const AdcQuantizer adc(bits, 0.0, 128.0, AdcRounding::kNearest);
  double prev = -1e300;
  // Stay inside the unsaturated range: the top code's reconstruction level
  // is one step below the range end, so values beyond it clip.
  const double top = 128.0 - adc.step() - 0.3;
  for (double v = 0.5; v < top; v += 0.173) {
    const double q = adc.quantize(v);
    EXPECT_LE(std::fabs(q - v), 0.5 * adc.step() + 1e-9) << "bits=" << bits;
    EXPECT_GE(q, prev) << "quantization must be monotone";
    prev = q;
  }
}

TEST_P(QuantizerProperty, IdempotentOnReconstructionLevels) {
  const unsigned bits = GetParam();
  const AdcQuantizer adc(bits, 0.0, 128.0);
  for (std::uint32_t c = 0; c < (1u << bits); c += 3) {
    const double level = adc.reconstruct(c);
    EXPECT_DOUBLE_EQ(adc.quantize(level), level);
  }
}

INSTANTIATE_TEST_SUITE_P(BitWidths, QuantizerProperty,
                         ::testing::Values(4u, 6u, 8u, 10u, 12u));

// ---------------------------------------------------------------- rule table

class RuleTableProperty
    : public ::testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(RuleTableProperty, ExactlyOneVariableChanges) {
  const auto [dfan, dcap] = GetParam();
  const double fan = 4000.0, cap = 0.6;
  const auto d = coordinate_and_apply(fan, fan + dfan, cap, cap + dcap);
  const bool fan_changed = std::fabs(d.fan_speed - fan) > 1e-12;
  const bool cap_changed = std::fabs(d.cpu_cap - cap) > 1e-12;
  EXPECT_LE(static_cast<int>(fan_changed) + static_cast<int>(cap_changed), 1);
  // Whatever changed must equal its proposal.
  if (fan_changed) {
    EXPECT_DOUBLE_EQ(d.fan_speed, fan + dfan);
  }
  if (cap_changed) {
    EXPECT_DOUBLE_EQ(d.cpu_cap, cap + dcap);
  }
}

TEST_P(RuleTableProperty, FanUpAlwaysWins) {
  const auto [dfan, dcap] = GetParam();
  if (dfan <= 1e-6) GTEST_SKIP();
  const auto a = coordinate(4000.0, 4000.0 + dfan, 0.6, 0.6 + dcap);
  EXPECT_EQ(a, CoordinationAction::kFanUp);
}

INSTANTIATE_TEST_SUITE_P(
    ProposalGrid, RuleTableProperty,
    ::testing::Combine(::testing::Values(-800.0, -100.0, 0.0, 100.0, 800.0),
                       ::testing::Values(-0.2, -0.05, 0.0, 0.05, 0.2)));

// ---------------------------------------------------------------- capper

class CapperProperty : public ::testing::TestWithParam<double> {};

TEST_P(CapperProperty, CapStaysInBoundsUnderAnyTemperature) {
  const double temp = GetParam();
  DeadzoneCpuCapper capper(CpuCapperParams{});
  double cap = 0.6;
  for (int i = 0; i < 100; ++i) {
    cap = capper.decide(CapControlInput{0.0, temp, cap});
    EXPECT_GE(cap, 0.1);
    EXPECT_LE(cap, 1.0);
  }
}

TEST_P(CapperProperty, MovementDirectionMatchesZone) {
  const double temp = GetParam();
  DeadzoneCpuCapper capper(CpuCapperParams{});  // zone (76, 80)
  const double cap = 0.6;
  const double next = capper.decide(CapControlInput{0.0, temp, cap});
  if (temp > 80.0) {
    EXPECT_LT(next, cap);
  } else if (temp < 76.0) {
    EXPECT_GT(next, cap);
  } else {
    EXPECT_DOUBLE_EQ(next, cap);
  }
}

INSTANTIATE_TEST_SUITE_P(Temperatures, CapperProperty,
                         ::testing::Values(60.0, 74.0, 76.0, 78.0, 80.0, 81.0,
                                           90.0, 120.0));

// ------------------------------------------------------- closed-loop safety

struct LoopCase {
  double utilization;
  double reference;
};

class ClosedLoopProperty : public ::testing::TestWithParam<LoopCase> {};

TEST_P(ClosedLoopProperty, FanCommandAlwaysInsideEnvelope) {
  const auto [u, ref] = GetParam();
  Rng rng(17);
  Server server(ServerParams{}, 3000.0, rng);
  AdaptivePidFanParams fp;
  auto fan = std::make_unique<AdaptivePidFanController>(
      SolutionConfig::default_gain_schedule(), fp, 3000.0);
  FanOnlyPolicy policy(std::move(fan), ref);
  ConstantWorkload w(u);
  SimulationParams sim;
  sim.duration_s = 1200.0;
  sim.initial_utilization = u;
  const auto r = run_simulation(server, policy, w, sim);
  for (const auto& rec : r.trace) {
    EXPECT_GE(rec.fan_cmd_rpm, fp.min_speed_rpm);
    EXPECT_LE(rec.fan_cmd_rpm, fp.max_speed_rpm);
  }
}

TEST_P(ClosedLoopProperty, SteadyStateTracksReferenceWhenReachable) {
  const auto [u, ref] = GetParam();
  const auto thermal = ServerThermalModel::table1_defaults();
  const auto cpu = CpuPowerModel::table1_defaults();
  // Only check tracking when the reference is inside the plant's reachable
  // band at this utilization (between max-fan and min-fan steady states).
  const double t_min = thermal.steady_state_junction(cpu.power(u), 8500.0);
  const double t_max = thermal.steady_state_junction(cpu.power(u), 1500.0);
  if (ref < t_min + 1.0 || ref > t_max - 1.0) GTEST_SKIP();

  Rng rng(17);
  Server server(ServerParams{}, 3000.0, rng);
  AdaptivePidFanParams fp;
  auto fan = std::make_unique<AdaptivePidFanController>(
      SolutionConfig::default_gain_schedule(), fp, 3000.0);
  FanOnlyPolicy policy(std::move(fan), ref);
  ConstantWorkload w(u);
  SimulationParams sim;
  sim.duration_s = 2400.0;
  sim.initial_utilization = u;
  const auto r = run_simulation(server, policy, w, sim);
  // Mean junction over the last quarter must sit within ~1.5 quantization
  // steps of the reference.
  const auto temps = r.column(&TraceRecord::junction_celsius);
  double mean = 0.0;
  std::size_t n = 0;
  for (std::size_t i = 3 * temps.size() / 4; i < temps.size(); ++i) {
    mean += temps[i];
    ++n;
  }
  mean /= static_cast<double>(n);
  EXPECT_NEAR(mean, ref, 1.5) << "u=" << u << " ref=" << ref;
}

INSTANTIATE_TEST_SUITE_P(
    OperatingPoints, ClosedLoopProperty,
    ::testing::Values(LoopCase{0.1, 72.0}, LoopCase{0.1, 75.0},
                      LoopCase{0.3, 74.0}, LoopCase{0.5, 75.0},
                      LoopCase{0.7, 75.0}, LoopCase{0.7, 77.0},
                      LoopCase{0.9, 77.0}, LoopCase{1.0, 78.0}));

// ------------------------------------------------- simulation invariants

class SimulationInvariants : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SimulationInvariants, EnergyAndCountsConsistent) {
  ComparisonScenario s = ComparisonScenario::paper_defaults();
  s.sim.duration_s = 1200.0;
  s.workload.base.duration_s = 1200.0;
  s.seed = GetParam();
  for (SolutionKind kind :
       {SolutionKind::kUncoordinated, SolutionKind::kRuleAdaptiveTrefSingleStep}) {
    const auto r = run_solution(kind, s);
    // CPU energy bounded by idle/max envelopes.
    EXPECT_GE(r.cpu_energy_joules, 96.0 * r.duration_s - 1.0) << to_string(kind);
    EXPECT_LE(r.cpu_energy_joules, 160.0 * r.duration_s + 1.0) << to_string(kind);
    // Fan energy bounded by the max-speed draw.
    EXPECT_GE(r.fan_energy_joules, 0.0);
    EXPECT_LE(r.fan_energy_joules, 29.4 * r.duration_s + 1.0);
    // Deadline accounting: violations never exceed periods.
    EXPECT_LE(r.deadline.violations(), r.deadline.periods());
    EXPECT_EQ(r.deadline.periods(), static_cast<std::size_t>(r.duration_s));
    // Junction stays above ambient.
    EXPECT_GT(r.junction_stats.min(), 42.0);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimulationInvariants,
                         ::testing::Values(1ull, 2ull, 3ull, 11ull, 42ull));

}  // namespace
}  // namespace fsc
