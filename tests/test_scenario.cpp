// sim/scenario.hpp + the unified Registry<T> behind the PolicyFactory:
// ScenarioSpec validation, JSON round-trips (spec -> to_json ->
// from_json_text -> ==), lowering onto the engine parameter structs
// (build_rack / build_room), strict unknown-key rejection, the minimal
// util/json parser the loaders ride on, and a full round-trip over every
// registered entry of all three factory tiers.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <stdexcept>

#include "coord/coordinator.hpp"
#include "core/policy_factory.hpp"
#include "room/scheduler.hpp"
#include "sim/scenario.hpp"
#include "util/json.hpp"

namespace fsc {
namespace {

// ------------------------------------------------------------ validation

TEST(ScenarioSpec, DefaultSpecIsValid) {
  EXPECT_NO_THROW(ScenarioSpec{}.validate());
}

TEST(ScenarioSpec, ValidateRejectsBadShapes) {
  ScenarioSpec spec;
  spec.racks = 0;
  EXPECT_THROW(spec.validate(), std::invalid_argument);
  spec = {};
  spec.slots = 0;
  EXPECT_THROW(spec.validate(), std::invalid_argument);
  spec = {};
  spec.duration_s = 0.0;
  EXPECT_THROW(spec.validate(), std::invalid_argument);
  spec = {};
  spec.migration_step = 1.5;
  EXPECT_THROW(spec.validate(), std::invalid_argument);
}

TEST(ScenarioSpec, ValidateRejectsUnknownPolicyNames) {
  ScenarioSpec spec;
  spec.dtm = "no-such-policy";
  EXPECT_THROW(spec.validate(), std::invalid_argument);
  spec = {};
  spec.coordinator = "no-such-coordinator";
  EXPECT_THROW(spec.validate(), std::invalid_argument);
  spec = {};
  spec.scheduler = "no-such-scheduler";
  EXPECT_THROW(spec.validate(), std::invalid_argument);
}

TEST(ScenarioSpec, ValidateChecksTheFaultPlanAgainstTheFleet) {
  ScenarioSpec spec;
  spec.racks = 1;
  spec.slots = 4;
  spec.faults.events.push_back(
      {FaultKind::kSensorStuck, 0, 7, 0.0, -1.0, 45.0});  // slot out of range
  EXPECT_THROW(spec.validate(), std::invalid_argument);
  spec.faults.events[0].slot = 3;
  EXPECT_NO_THROW(spec.validate());
}

// ------------------------------------------------------------- lowering

TEST(ScenarioSpec, BuildRackAppliesOverrides) {
  ScenarioSpec spec;
  spec.slots = 5;
  spec.seed = 99;
  spec.duration_s = 300.0;
  spec.coordinator = "failsafe";
  spec.dtm = "fan-only";
  spec.rack_budget_watts = 750.0;
  spec.fan_zone = 5;
  spec.chunk = 2;
  spec.batched = false;
  spec.plenum = false;
  spec.faults.events.push_back(
      {FaultKind::kSlotBlackout, 0, 1, 60.0, -1.0, 0.0});
  const CoupledRackParams p = spec.build_rack();
  EXPECT_EQ(p.rack.num_servers, 5u);
  EXPECT_EQ(p.rack.base_seed, 99u);
  EXPECT_DOUBLE_EQ(p.rack.sim.duration_s, 300.0);
  EXPECT_EQ(p.coordinator, "failsafe");
  EXPECT_EQ(p.rack.policy, "fan-only");
  EXPECT_DOUBLE_EQ(p.coord.rack_power_budget_watts, 750.0);
  EXPECT_EQ(p.coord.fan_zone_size, 5u);
  EXPECT_EQ(p.chunk, 2u);
  EXPECT_FALSE(p.batched);
  EXPECT_FALSE(p.plenum_enabled);
  EXPECT_EQ(p.faults, spec.faults);
}

TEST(ScenarioSpec, BuildRackKeepsScenarioDefaultsWhenUnset) {
  const ScenarioSpec spec;
  const CoupledRackParams p = spec.build_rack();
  const CoupledRackParams canon = default_coupled_scenario(42, 900.0);
  EXPECT_EQ(p.coordinator, canon.coordinator);
  EXPECT_EQ(p.rack.policy, canon.rack.policy);
  EXPECT_DOUBLE_EQ(p.coord.rack_power_budget_watts,
                   canon.coord.rack_power_budget_watts);
  EXPECT_TRUE(p.faults.empty());
}

TEST(ScenarioSpec, BuildRackNeedsASingleRack) {
  ScenarioSpec spec;
  spec.racks = 3;
  EXPECT_THROW(spec.build_rack(), std::invalid_argument);
}

TEST(ScenarioSpec, BuildRoomRehomesTheFaultPlanPerRack) {
  ScenarioSpec spec;
  spec.racks = 3;
  spec.slots = 4;
  spec.scheduler = "failsafe";
  spec.faults.events.push_back(
      {FaultKind::kFanSeized, 1, 2, 30.0, -1.0, 0.0});
  spec.faults.events.push_back(
      {FaultKind::kSensorStuck, 2, 0, 60.0, -1.0, 45.0});
  const RoomParams p = spec.build_room();
  EXPECT_EQ(p.scheduler, "failsafe");
  ASSERT_EQ(p.racks.size(), 3u);
  EXPECT_TRUE(p.racks[0].faults.empty());
  ASSERT_EQ(p.racks[1].faults.size(), 1u);
  EXPECT_EQ(p.racks[1].faults.events[0].rack, 0u);  // re-homed
  EXPECT_EQ(p.racks[1].faults.events[0].kind, FaultKind::kFanSeized);
  ASSERT_EQ(p.racks[2].faults.size(), 1u);
  EXPECT_EQ(p.racks[2].faults.events[0].kind, FaultKind::kSensorStuck);
  for (const CoupledRackParams& rack : p.racks) {
    EXPECT_EQ(rack.rack.num_servers, 4u);
  }
}

// --------------------------------------------------------- JSON round-trip

ScenarioSpec fancy_spec() {
  ScenarioSpec spec;
  spec.racks = 2;
  spec.slots = 6;
  spec.seed = 7;
  spec.duration_s = 450.0;
  spec.dtm = "r-coord";
  spec.coordinator = "failsafe";
  spec.scheduler = "thermal-headroom";
  spec.rack_budget_watts = 800.0;
  spec.room_budget_watts = 1500.0;
  spec.migration_step = 0.2;
  spec.fan_zone = 3;
  spec.plenum = false;
  spec.cross_plenum = false;
  spec.threads = 4;
  spec.chunk = 2;
  spec.batched = false;
  spec.executor = false;
  spec.simd = simd::SimdMode::kAuto;
  spec.trace_dir = "traces/";
  spec.faults.events.push_back(
      {FaultKind::kSensorNoisy, 1, 3, 120.0, 60.0, 3.0});
  return spec;
}

TEST(ScenarioSpec, JsonRoundTripIsExact) {
  const ScenarioSpec spec = fancy_spec();
  EXPECT_EQ(ScenarioSpec::from_json_text(spec.to_json()), spec);
  EXPECT_EQ(ScenarioSpec::from_json_text(ScenarioSpec{}.to_json()),
            ScenarioSpec{});
}

TEST(ScenarioSpec, MissingKeysKeepDefaults) {
  const ScenarioSpec spec =
      ScenarioSpec::from_json_text(R"({"slots": 3, "seed": 5})");
  EXPECT_EQ(spec.slots, 3u);
  EXPECT_EQ(spec.seed, 5u);
  EXPECT_EQ(spec.racks, ScenarioSpec{}.racks);
  EXPECT_EQ(spec.scheduler, ScenarioSpec{}.scheduler);
}

TEST(ScenarioSpec, UnknownKeyThrows) {
  EXPECT_THROW(ScenarioSpec::from_json_text(R"({"slotz": 3})"),
               std::invalid_argument);
}

TEST(ScenarioSpec, MalformedValuesThrow) {
  EXPECT_THROW(ScenarioSpec::from_json_text(R"({"slots": -3})"),
               std::invalid_argument);
  EXPECT_THROW(ScenarioSpec::from_json_text(R"({"slots": 2.5})"),
               std::invalid_argument);
  EXPECT_THROW(ScenarioSpec::from_json_text(R"({"simd": "wide"})"),
               std::invalid_argument);
  EXPECT_THROW(ScenarioSpec::from_json_text("[]"), std::invalid_argument);
  EXPECT_THROW(ScenarioSpec::from_json_text("{"), std::invalid_argument);
}

TEST(ScenarioSpec, FromJsonFileRoundTrip) {
  const ScenarioSpec spec = fancy_spec();
  const std::string path = "test_scenario_roundtrip.json";
  {
    std::ofstream out(path);
    ASSERT_TRUE(out.is_open());
    out << spec.to_json();
  }
  EXPECT_EQ(ScenarioSpec::from_json_file(path), spec);
  std::remove(path.c_str());
  EXPECT_THROW(ScenarioSpec::from_json_file("no/such/file.json"),
               std::invalid_argument);
}

TEST(SimdModeNames, RoundTrip) {
  for (simd::SimdMode mode :
       {simd::SimdMode::kOff, simd::SimdMode::kOn, simd::SimdMode::kAuto}) {
    EXPECT_EQ(simd_mode_from_string(to_string(mode)), mode);
  }
  EXPECT_THROW(simd_mode_from_string("wide"), std::invalid_argument);
}

// ------------------------------------------------------- util/json parser

TEST(Json, ParsesScalarsAndNesting) {
  const json::Value v = json::Value::parse(
      R"({"a": 1.5, "b": [true, null, "x\n"], "c": {"d": -2}})");
  EXPECT_DOUBLE_EQ(v.at("a").as_number(), 1.5);
  EXPECT_TRUE(v.at("b").elements()[0].as_bool());
  EXPECT_TRUE(v.at("b").elements()[1].is_null());
  EXPECT_EQ(v.at("b").elements()[2].as_string(), "x\n");
  EXPECT_DOUBLE_EQ(v.at("c").at("d").as_number(), -2.0);
}

TEST(Json, DumpParseRoundTrip) {
  json::Value list = json::Value::array();
  list.push_back(json::Value::number(3.25));
  list.push_back(json::Value::boolean(false));
  json::Value v = json::Value::object();
  v.set("name", json::Value::string("quote \" slash \\ tab \t"));
  v.set("list", std::move(list));
  const json::Value back = json::Value::parse(v.dump(2));
  EXPECT_EQ(back.at("name").as_string(), "quote \" slash \\ tab \t");
  EXPECT_DOUBLE_EQ(back.at("list").elements()[0].as_number(), 3.25);
  EXPECT_FALSE(back.at("list").elements()[1].as_bool());
}

TEST(Json, RejectsMalformedInput) {
  for (const char* text :
       {"{", "[1,]", "{\"a\" 1}", "tru", "\"unterminated", "1 2"}) {
    EXPECT_THROW(json::Value::parse(text), std::invalid_argument) << text;
  }
}

// ------------------------------------------------------ unified registry

TEST(Registry, EveryListedEntryRoundTripsThroughMake) {
  const auto& factory = PolicyFactory::instance();

  const SolutionConfig scfg;
  for (const PolicyListing& e : factory.list_policies()) {
    SCOPED_TRACE(e.name);
    EXPECT_FALSE(e.description.empty());
    EXPECT_TRUE(factory.contains(e.name));
    EXPECT_EQ(factory.describe(e.name), e.description);
    EXPECT_NE(factory.make(e.name, scfg), nullptr);
  }

  const CoordinatorConfig ccfg;
  for (const PolicyListing& e : factory.list_coordinators()) {
    SCOPED_TRACE(e.name);
    EXPECT_FALSE(e.description.empty());
    EXPECT_EQ(factory.describe_coordinator(e.name), e.description);
    const auto coord = factory.make_coordinator(e.name, ccfg);
    ASSERT_NE(coord, nullptr);
    EXPECT_EQ(coord->name(), e.name);
  }

  const RoomSchedulerConfig rcfg;
  for (const PolicyListing& e : factory.list_room_schedulers()) {
    SCOPED_TRACE(e.name);
    EXPECT_FALSE(e.description.empty());
    EXPECT_EQ(factory.describe_room_scheduler(e.name), e.description);
    const auto sched = factory.make_room_scheduler(e.name, rcfg);
    ASSERT_NE(sched, nullptr);
    EXPECT_EQ(sched->name(), e.name);
  }
}

TEST(Registry, ListingsMatchSortedNames) {
  const auto& factory = PolicyFactory::instance();
  const auto check = [](std::vector<PolicyListing> listed,
                        std::vector<std::string> names) {
    ASSERT_EQ(listed.size(), names.size());
    std::vector<std::string> listed_names;
    for (const auto& e : listed) listed_names.push_back(e.name);
    std::sort(listed_names.begin(), listed_names.end());
    EXPECT_EQ(listed_names, names);  // names() is sorted
  };
  check(factory.list_policies(), factory.names());
  check(factory.list_coordinators(), factory.coordinator_names());
  check(factory.list_room_schedulers(), factory.room_scheduler_names());
}

TEST(Registry, FailsafePoliciesRegisterThroughTheSamePath) {
  const auto& factory = PolicyFactory::instance();
  EXPECT_TRUE(factory.contains_coordinator("failsafe"));
  EXPECT_TRUE(factory.contains_room_scheduler("failsafe"));
}

TEST(Registry, DuplicateAndEmptyRegistrationsThrow) {
  auto& factory = PolicyFactory::instance();
  EXPECT_THROW(factory.register_coordinator(
                   "independent", "dup",
                   [](const CoordinatorConfig&)
                       -> std::unique_ptr<RackCoordinator> { return nullptr; }),
               std::invalid_argument);
  EXPECT_THROW(
      factory.register_policy("", "empty name",
                              [](const SolutionConfig&)
                                  -> std::unique_ptr<DtmPolicy> {
                                return nullptr;
                              }),
      std::invalid_argument);
  EXPECT_THROW(
      factory.register_room_scheduler("null-builder", "null", nullptr),
      std::invalid_argument);
}

TEST(Registry, UnknownNamesThrowListingKnown) {
  const auto& factory = PolicyFactory::instance();
  try {
    factory.make_room_scheduler("no-such-scheduler", RoomSchedulerConfig{});
    FAIL() << "expected std::out_of_range";
  } catch (const std::out_of_range& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("room scheduler"), std::string::npos);
    EXPECT_NE(what.find("static"), std::string::npos);  // lists the known
  }
}

}  // namespace
}  // namespace fsc
