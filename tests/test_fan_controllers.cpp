// Unit tests for the baseline fan controllers (single threshold, deadzone)
// and their documented failure mode under non-ideal measurements (Fig. 4).
#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "core/threshold_fan.hpp"
#include "metrics/oscillation.hpp"
#include "sim/server.hpp"

namespace fsc {
namespace {

FanControlInput input_at(double temp, double speed) {
  FanControlInput in;
  in.measured_temp = temp;
  in.reference_temp = 75.0;
  in.current_speed = speed;
  in.quantization_step = 1.0;
  return in;
}

// ---------------------------------------------------------------- threshold

TEST(SingleThreshold, BangBang) {
  SingleThresholdFanController c(75.0, 500.0, 8500.0);
  EXPECT_DOUBLE_EQ(c.decide(input_at(80.0, 2000.0)), 8500.0);
  EXPECT_DOUBLE_EQ(c.decide(input_at(70.0, 2000.0)), 500.0);
}

TEST(SingleThreshold, ExactlyAtThresholdIsLow) {
  SingleThresholdFanController c(75.0, 500.0, 8500.0);
  EXPECT_DOUBLE_EQ(c.decide(input_at(75.0, 2000.0)), 500.0);
}

TEST(SingleThreshold, RejectsBadEnvelope) {
  EXPECT_THROW(SingleThresholdFanController(75.0, 8500.0, 500.0),
               std::invalid_argument);
}

// ---------------------------------------------------------------- deadzone

TEST(Deadzone, StepsUpAboveHigh) {
  DeadzoneFanController c(73.0, 77.0, 250.0, 500.0, 8500.0);
  EXPECT_DOUBLE_EQ(c.decide(input_at(78.0, 2000.0)), 2250.0);
}

TEST(Deadzone, StepsDownBelowLow) {
  DeadzoneFanController c(73.0, 77.0, 250.0, 500.0, 8500.0);
  EXPECT_DOUBLE_EQ(c.decide(input_at(70.0, 2000.0)), 1750.0);
}

TEST(Deadzone, HoldsInsideZone) {
  DeadzoneFanController c(73.0, 77.0, 250.0, 500.0, 8500.0);
  EXPECT_DOUBLE_EQ(c.decide(input_at(75.0, 2000.0)), 2000.0);
  EXPECT_DOUBLE_EQ(c.decide(input_at(73.0, 2000.0)), 2000.0);
  EXPECT_DOUBLE_EQ(c.decide(input_at(77.0, 2000.0)), 2000.0);
}

TEST(Deadzone, ClampsAtEnvelope) {
  DeadzoneFanController c(73.0, 77.0, 1000.0, 500.0, 8500.0);
  EXPECT_DOUBLE_EQ(c.decide(input_at(70.0, 600.0)), 500.0);
  EXPECT_DOUBLE_EQ(c.decide(input_at(90.0, 8400.0)), 8500.0);
}

TEST(Deadzone, RejectsBadParameters) {
  EXPECT_THROW(DeadzoneFanController(77.0, 73.0, 100.0, 500.0, 8500.0),
               std::invalid_argument);
  EXPECT_THROW(DeadzoneFanController(73.0, 77.0, 0.0, 500.0, 8500.0),
               std::invalid_argument);
  EXPECT_THROW(DeadzoneFanController(73.0, 77.0, 100.0, 8500.0, 500.0),
               std::invalid_argument);
}

// ------------------------------------------------ Fig. 4 failure mechanism
//
// Under a FIXED workload, a deadzone controller driving the real plant
// through the lagged + quantized sensor produces sustained fan-speed
// oscillation (the paper's Fig. 4).  This is an integration-level check of
// the mechanism the paper motivates the whole design with, so it lives
// with the controller under test.

std::vector<double> run_deadzone_closed_loop(double lag_s, bool quantize) {
  Rng rng(7);
  ServerParams sp;
  sp.sensor.lag_s = lag_s;
  sp.sensor.quantize = quantize;
  Server server(sp, 2000.0, rng);

  // Operating point: a fixed utilization whose thermal equilibrium lies
  // near the deadzone centre (u = 0.55 -> ~75 degC at ~4180 rpm).  The
  // deadzone is tighter than the 1 degC quantization step and the 1200 rpm
  // actuation step moves the steady-state junction by ~2 degC - so every
  // actuation jumps across the hold window, the limit-cycle mechanism the
  // paper identifies in Fig. 4.
  const double u = 0.55;
  server.settle(u, 4500.0);

  DeadzoneFanController ctl(74.6, 75.4, 1200.0, 1500.0, 8500.0);
  double fan_cmd = 4500.0;
  std::vector<double> speeds;
  const double fan_period = 30.0;
  const double dt = 0.05;
  for (int k = 0; k < 120; ++k) {  // 1 hour
    FanControlInput in;
    in.measured_temp = server.measured_temp();
    in.reference_temp = 75.0;
    in.current_speed = fan_cmd;
    in.quantization_step = server.quantization_step();
    fan_cmd = ctl.decide(in);
    server.command_fan(fan_cmd);
    speeds.push_back(fan_cmd);
    for (int i = 0; i < static_cast<int>(fan_period / dt); ++i) server.step(u, dt);
  }
  return speeds;
}

TEST(Fig4Mechanism, DeadzoneOscillatesUnderLagAndQuantization) {
  const auto speeds = run_deadzone_closed_loop(10.0, true);
  OscillationParams p;
  p.hysteresis = 300.0;  // fan-speed units: ignore sub-step jitter
  const auto report = analyse_oscillation(speeds, p);
  EXPECT_TRUE(is_oscillatory(report))
      << "deadzone control should limit-cycle under non-ideal sensing";
  EXPECT_GE(report.mean_amplitude, 600.0);  // at least one controller step
}

}  // namespace
}  // namespace fsc
