// room/ subsystem tests: scheduler registry, cross-rack plenum physics,
// demand-scale migration mechanics, thermal-headroom hysteresis,
// power-aware re-packing + infeasible-budget rejection, lockstep
// determinism (bit-identical across thread counts), equivalence with K
// independent CoupledRackEngine runs when the room coupling is off, and
// the migration benefit on the default contended scenario.
#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>

#include "coord/coupled_rack_engine.hpp"
#include "core/policy_factory.hpp"
#include "room/cross_plenum.hpp"
#include "room/room_engine.hpp"
#include "room/schedulers.hpp"
#include "sim/instrumentation.hpp"
#include "workload/synthetic.hpp"

namespace fsc {
namespace {

CoupledRackParams small_rack(std::uint64_t seed, std::size_t n = 3,
                             double duration_s = 120.0) {
  CoupledRackParams p;
  p.rack.num_servers = n;
  p.rack.base_seed = seed;
  p.rack.sim.duration_s = duration_s;
  p.rack.sim.initial_utilization = 0.1;
  p.rack.workload.base.duration_s = duration_s;
  p.coord.coordination_period_s = 30.0;
  return p;
}

RoomParams small_room(std::size_t racks = 2, std::size_t slots = 3,
                      double duration_s = 120.0) {
  RoomParams p;
  for (std::size_t i = 0; i < racks; ++i) {
    p.racks.push_back(small_rack(1000 + i, slots, duration_s));
  }
  return p;
}

/// Value-returning adapter over the out-param RoomScheduler::schedule API
/// so the scheduler unit tests keep their expression-style assertions.
std::vector<RackDirective> run_schedule(
    RoomScheduler& sched, double t, const std::vector<RackObservation>& racks) {
  std::vector<RackDirective> out;
  sched.schedule(t, racks, out);
  return out;
}

RackObservation obs(std::size_t index, double inlet_c, double demand,
                    double scale = 1.0, std::size_t slots = 8) {
  RackObservation o;
  o.index = index;
  o.slots = slots;
  o.demand = demand;
  o.executed = demand;
  o.mean_inlet_celsius = inlet_c;
  o.max_inlet_celsius = inlet_c;
  o.demand_scale = scale;
  return o;
}

// ------------------------------------------------------------- registry

TEST(RoomSchedulerRegistry, BuiltinsAreRegistered) {
  const auto& factory = PolicyFactory::instance();
  for (const char* name : {"static", "thermal-headroom", "power-aware"}) {
    EXPECT_TRUE(factory.contains_room_scheduler(name)) << name;
    EXPECT_FALSE(factory.describe_room_scheduler(name).empty());
  }
  const auto names = factory.room_scheduler_names();
  EXPECT_GE(names.size(), 3u);
  EXPECT_TRUE(std::is_sorted(names.begin(), names.end()));
}

TEST(RoomSchedulerRegistry, MakeBuildsTheNamedScheduler) {
  RoomSchedulerConfig cfg;
  const auto sched =
      PolicyFactory::instance().make_room_scheduler("thermal-headroom", cfg);
  ASSERT_NE(sched, nullptr);
  EXPECT_EQ(sched->name(), "thermal-headroom");
}

TEST(RoomSchedulerRegistry, UnknownNameThrowsListingKnown) {
  RoomSchedulerConfig cfg;
  try {
    PolicyFactory::instance().make_room_scheduler("no-such-scheduler", cfg);
    FAIL() << "expected std::out_of_range";
  } catch (const std::out_of_range& e) {
    EXPECT_NE(std::string(e.what()).find("thermal-headroom"),
              std::string::npos);
  }
}

TEST(RoomSchedulerRegistry, NamespacesAreIndependent) {
  // "static" is a room scheduler; "static-fan" is the DtmPolicy and
  // "independent" the rack coordinator — none of them cross registries.
  const auto& factory = PolicyFactory::instance();
  EXPECT_TRUE(factory.contains_room_scheduler("static"));
  EXPECT_FALSE(factory.contains("static"));
  EXPECT_FALSE(factory.contains_coordinator("static"));
  EXPECT_FALSE(factory.contains_room_scheduler("independent"));
}

// ------------------------------------------------------ cross-rack plenum

TEST(CrossRackPlenum, ZeroRecirculationDecouplesTheRoom) {
  CrossRackPlenumParams p;
  p.recirculation_fraction = 0.0;
  const CrossRackPlenumModel model(p, 3);
  const auto offsets = model.ambient_offsets(
      {{2000.0, 6000.0}, {2000.0, 6000.0}, {2000.0, 6000.0}});
  for (double o : offsets) EXPECT_DOUBLE_EQ(o, 0.0);
}

TEST(CrossRackPlenum, NeighborsPreheatWithDistanceDecay) {
  CrossRackPlenumParams p;
  p.recirculation_fraction = 0.1;
  p.neighbor_decay = 0.5;
  const CrossRackPlenumModel model(p, 3);
  // Only rack 0 dissipates power.
  const auto offsets =
      model.ambient_offsets({{3200.0, 6000.0}, {0.0, 6000.0}, {0.0, 6000.0}});
  EXPECT_DOUBLE_EQ(offsets[0], 0.0);  // no self-recirculation
  EXPECT_GT(offsets[1], 0.0);
  EXPECT_NEAR(offsets[2], 0.5 * offsets[1], 1e-12);  // one rack further
}

TEST(CrossRackPlenum, RejectsMismatchedRackCount) {
  const CrossRackPlenumModel model(CrossRackPlenumParams{}, 2);
  EXPECT_THROW(model.ambient_offsets({{1000.0, 6000.0}}),
               std::invalid_argument);
}

// --------------------------------------------------- demand-scale hook

TEST(DemandScale, ScalesAndClampsTheWorkloadDemand) {
  SimulationParams sim;
  sim.duration_s = 10.0;
  sim.record_trace = false;
  SimulationEngine engine(sim);
  const SolutionConfig cfg;
  Rng rng(3);
  Server server(ServerParams{}, cfg.initial_fan_rpm, rng);
  const auto policy = make_solution(SolutionKind::kUncoordinated, cfg);
  ConstantWorkload workload(0.6);

  SimulationEngine::Session session(engine, server, *policy, workload);
  session.step_period();
  EXPECT_DOUBLE_EQ(session.last_demand(), 0.6);
  session.set_demand_scale(0.5);
  session.step_period();
  EXPECT_DOUBLE_EQ(session.last_demand(), 0.3);
  session.set_demand_scale(2.0);  // 1.2 demanded, clamped to full load
  session.step_period();
  EXPECT_DOUBLE_EQ(session.last_demand(), 1.0);
  EXPECT_THROW(session.set_demand_scale(-0.1), std::invalid_argument);
}

// ------------------------------------------------------ thermal-headroom

RoomSchedulerConfig headroom_cfg() {
  RoomSchedulerConfig cfg;
  cfg.migration_step = 0.2;
  cfg.hysteresis_celsius = 1.0;
  cfg.cooldown_rounds = 2;
  cfg.migration_cost_fraction = 0.1;
  return cfg;
}

TEST(ThermalHeadroom, ValidatesConfiguration) {
  RoomSchedulerConfig cfg = headroom_cfg();
  cfg.migration_step = 0.0;
  EXPECT_THROW(ThermalHeadroomScheduler{cfg}, std::invalid_argument);
  cfg = headroom_cfg();
  cfg.min_demand_scale = 3.0;  // above max
  EXPECT_THROW(ThermalHeadroomScheduler{cfg}, std::invalid_argument);
}

TEST(ThermalHeadroom, DeadbandHoldsTheAssignment) {
  ThermalHeadroomScheduler sched(headroom_cfg());
  // Spread (0.5 C) inside the 1 C deadband: nothing moves.
  const auto d =
      run_schedule(sched, 0.0, {obs(0, 30.5, 0.8), obs(1, 30.0, 0.2)});
  ASSERT_EQ(d.size(), 2u);
  EXPECT_DOUBLE_EQ(d[0].demand_scale, 1.0);
  EXPECT_DOUBLE_EQ(d[1].demand_scale, 1.0);
  EXPECT_EQ(sched.migrations(), 0u);
}

TEST(ThermalHeadroom, MigratesFromHotToCoolConservingDemand) {
  ThermalHeadroomScheduler sched(headroom_cfg());
  const auto d =
      run_schedule(sched, 0.0, {obs(0, 36.0, 0.8), obs(1, 30.0, 0.2)});
  ASSERT_EQ(d.size(), 2u);
  EXPECT_EQ(sched.migrations(), 1u);
  // Donor sheds exactly the step fraction.
  EXPECT_DOUBLE_EQ(sched.scales()[0], 0.8);
  // Moved units: 0.2 * 0.8 * 8 = 1.28 over the receiver's 0.2 * 8 = 1.6
  // raw units -> receiver scale 1 + 0.8.
  EXPECT_NEAR(sched.scales()[1], 1.8, 1e-12);
  EXPECT_DOUBLE_EQ(d[0].demand_scale, 0.8);
  // The receiver additionally pays the one-round migration cost.
  EXPECT_NEAR(d[1].demand_scale, 1.8 * 1.1, 1e-12);
  // Aggregate demanded utilization is conserved (cost aside):
  // 0.8*0.8*8 + (0.2*1.8/1.0)*8 == 0.8*8 + 0.2*8.
  EXPECT_NEAR(sched.scales()[0] * 0.8 * 8 + sched.scales()[1] * 0.2 * 8,
              0.8 * 8 + 0.2 * 8, 1e-9);
}

TEST(ThermalHeadroom, IdleRackIsSkippedAsReceiver) {
  // Rack 2 is coolest but idle — a demand multiplier cannot inject load
  // onto it, so the migration must fall through to the next-coolest
  // loaded rack instead of silently degenerating to the static policy.
  ThermalHeadroomScheduler sched(headroom_cfg());
  const auto d = run_schedule(sched, 
      0.0, {obs(0, 36.0, 0.8), obs(1, 31.0, 0.2), obs(2, 30.0, 0.0)});
  ASSERT_EQ(d.size(), 3u);
  EXPECT_EQ(sched.migrations(), 1u);
  EXPECT_DOUBLE_EQ(d[0].demand_scale, 0.8);  // donor still sheds
  EXPECT_GT(d[1].demand_scale, 1.0);         // loaded cool rack receives
  EXPECT_DOUBLE_EQ(d[2].demand_scale, 1.0);  // idle rack untouched
}

TEST(ThermalHeadroom, CooldownBlocksImmediateReMigration) {
  ThermalHeadroomScheduler sched(headroom_cfg());
  const std::vector<RackObservation> hot_cold = {obs(0, 36.0, 0.8),
                                                 obs(1, 30.0, 0.2)};
  (void)run_schedule(sched, 0.0, hot_cold);
  ASSERT_EQ(sched.migrations(), 1u);
  // Two cooldown rounds: the spread is still huge but nothing moves, and
  // the receiver's cost surcharge is retired (directive == scale).
  auto d = run_schedule(sched, 30.0, hot_cold);
  EXPECT_EQ(sched.migrations(), 1u);
  EXPECT_NEAR(d[1].demand_scale, 1.8, 1e-12);
  d = run_schedule(sched, 60.0, hot_cold);
  EXPECT_EQ(sched.migrations(), 1u);
  // Cooldown expired: the persistent spread triggers the next migration.
  (void)run_schedule(sched, 90.0, hot_cold);
  EXPECT_EQ(sched.migrations(), 2u);
}

TEST(ThermalHeadroom, ResetDiscardsScalesAndCooldown) {
  ThermalHeadroomScheduler sched(headroom_cfg());
  (void)run_schedule(sched, 0.0, {obs(0, 36.0, 0.8), obs(1, 30.0, 0.2)});
  ASSERT_EQ(sched.migrations(), 1u);
  sched.reset();
  EXPECT_EQ(sched.migrations(), 0u);
  const auto d =
      run_schedule(sched, 0.0, {obs(0, 30.2, 0.8), obs(1, 30.0, 0.2)});
  EXPECT_DOUBLE_EQ(d[0].demand_scale, 1.0);
  EXPECT_DOUBLE_EQ(d[1].demand_scale, 1.0);
}

// ----------------------------------------------------------- power-aware

TEST(PowerAware, RejectsBudgetBelowTheIdleFloor) {
  RoomSchedulerConfig cfg;
  cfg.total_slots = 16;
  cfg.room_power_budget_watts = 100.0;  // << 16 x idle draw
  EXPECT_THROW(PowerAwareScheduler{cfg}, std::invalid_argument);
}

TEST(PowerAware, UntouchedWhenEveryRackFitsItsBudget) {
  RoomSchedulerConfig cfg;
  cfg.num_racks = 2;
  cfg.total_slots = 16;
  cfg.room_power_budget_watts = 4000.0;  // 2000 W per rack, plenty
  PowerAwareScheduler sched(cfg);
  const auto d = run_schedule(sched, 0.0, {obs(0, 30.0, 0.9), obs(1, 30.0, 0.1)});
  ASSERT_EQ(d.size(), 2u);
  EXPECT_DOUBLE_EQ(d[0].demand_scale, 1.0);
  EXPECT_DOUBLE_EQ(d[1].demand_scale, 1.0);
}

TEST(PowerAware, RepacksOverBudgetLoadIntoHeadroom) {
  RoomSchedulerConfig cfg;
  cfg.num_racks = 2;
  cfg.total_slots = 16;
  cfg.room_power_budget_watts = 2000.0;  // 1000 W per rack
  PowerAwareScheduler sched(cfg);
  // Rack 0 wants 8 x 160 W = 1280 W (over); rack 1 idles with headroom.
  const auto d = run_schedule(sched, 0.0, {obs(0, 30.0, 1.0), obs(1, 30.0, 0.1)});
  ASSERT_EQ(d.size(), 2u);
  EXPECT_LT(d[0].demand_scale, 1.0);  // shed down to its budget
  EXPECT_GT(d[1].demand_scale, 1.0);  // absorbs the shed load
}

// ------------------------------------------------------------ room engine

void expect_identical(const CoupledRackResult& a, const CoupledRackResult& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.slots[i].result.fan_energy_joules,
              b.slots[i].result.fan_energy_joules);
    EXPECT_EQ(a.slots[i].result.cpu_energy_joules,
              b.slots[i].result.cpu_energy_joules);
    EXPECT_EQ(a.slots[i].deadline_violations, b.slots[i].deadline_violations);
    EXPECT_EQ(a.slots[i].result.max_junction_celsius,
              b.slots[i].result.max_junction_celsius);
    EXPECT_EQ(a.slots[i].inlet_stats.mean(), b.slots[i].inlet_stats.mean());
  }
  EXPECT_EQ(a.total_energy_joules, b.total_energy_joules);
  EXPECT_EQ(a.deadline_violation_percent, b.deadline_violation_percent);
}

TEST(RoomEngine, ValidatesConstruction) {
  EXPECT_THROW(RoomEngine(small_room(), 0), std::invalid_argument);
  EXPECT_THROW(RoomEngine(RoomParams{}, 1), std::invalid_argument);
  RoomParams p = small_room();
  p.racks[1].coord.coordination_period_s = 60.0;  // misaligned barriers
  EXPECT_THROW(RoomEngine(p, 1), std::invalid_argument);
  p = small_room();
  p.racks[1].rack.sim.duration_s = 240.0;
  EXPECT_THROW(RoomEngine(p, 1), std::invalid_argument);
  // Mixed SKUs: the scheduler prices with one datasheet model, so a rack
  // with a different nominal power model is refused.
  p = small_room();
  p.racks[1].rack.solution.cpu_power = CpuPowerModel(50.0, 100.0);
  EXPECT_THROW(RoomEngine(p, 1), std::invalid_argument);
}

TEST(RoomEngine, UnknownSchedulerThrowsAtRun) {
  RoomParams p = small_room();
  p.scheduler = "no-such-scheduler";
  EXPECT_THROW(RoomEngine(p, 1).run(), std::out_of_range);
}

TEST(RoomEngine, InfeasiblePowerBudgetIsRejectedAtRun) {
  RoomParams p = small_room();
  p.scheduler = "power-aware";
  p.sched.room_power_budget_watts = 50.0;  // below 6 servers' idle draw
  EXPECT_THROW(RoomEngine(p, 1).run(), std::invalid_argument);
}

TEST(RoomEngine, BitIdenticalAcross1And2And8Threads) {
  for (const char* scheduler : {"static", "thermal-headroom", "power-aware"}) {
    RoomParams p = small_room();
    p.scheduler = scheduler;
    p.sched.room_power_budget_watts = 800.0;  // tight: re-packing engages
    p.sched.hysteresis_celsius = 0.25;        // migrations actually fire
    const RoomResult one = RoomEngine(p, 1).run();
    const RoomResult two = RoomEngine(p, 2).run();
    const RoomResult eight = RoomEngine(p, 8).run();
    SCOPED_TRACE(scheduler);
    ASSERT_EQ(one.size(), two.size());
    ASSERT_EQ(one.size(), eight.size());
    for (std::size_t i = 0; i < one.size(); ++i) {
      expect_identical(one.racks[i].result, two.racks[i].result);
      expect_identical(one.racks[i].result, eight.racks[i].result);
      EXPECT_EQ(one.racks[i].final_demand_scale,
                two.racks[i].final_demand_scale);
      EXPECT_EQ(one.racks[i].final_demand_scale,
                eight.racks[i].final_demand_scale);
    }
    EXPECT_EQ(one.migration_events, two.migration_events);
    EXPECT_EQ(one.migration_events, eight.migration_events);
    EXPECT_EQ(one.total_energy_joules, eight.total_energy_joules);
  }
}

TEST(RoomEngine, UncoupledStaticMatchesIndependentRackRunsExactly) {
  // static scheduler + cross-rack plenum off: the room must reproduce K
  // standalone CoupledRackEngine runs bit for bit (same specs, same RNG
  // streams, same physics — only the execution schedule differs).
  RoomParams p = small_room(3, 3);
  p.cross_plenum_enabled = false;
  const RoomResult room = RoomEngine(p, 4).run();
  ASSERT_EQ(room.size(), 3u);
  for (std::size_t i = 0; i < p.racks.size(); ++i) {
    const CoupledRackResult standalone =
        CoupledRackEngine(p.racks[i], 2).run();
    SCOPED_TRACE(i);
    expect_identical(room.racks[i].result, standalone);
    EXPECT_EQ(room.racks[i].result.coordination_rounds,
              standalone.coordination_rounds);
  }
}

TEST(RoomEngine, CrossPlenumPreheatsNeighborsOfTheHotRack) {
  // Rack 0 heavy, rack 1 idle: with the cross-rack plenum on, rack 1's
  // inlets must sit above its uncoupled baseline.
  RoomParams p = small_room(2, 3, 240.0);
  p.racks[0].rack.workload.base.low = 0.6;
  p.racks[0].rack.workload.base.high = 0.95;
  p.racks[1].rack.workload.base.low = 0.02;
  p.racks[1].rack.workload.base.high = 0.05;
  p.cross_plenum.recirculation_fraction = 0.15;
  const RoomResult on = RoomEngine(p, 2).run();
  RoomParams off = p;
  off.cross_plenum_enabled = false;
  const RoomResult base = RoomEngine(off, 2).run();
  EXPECT_GT(on.racks[1].ambient_offset_stats.max(), 0.0);
  EXPECT_GT(on.racks[1].result.slots[0].inlet_stats.mean(),
            base.racks[1].result.slots[0].inlet_stats.mean());
}

TEST(RoomEngine, ReportsRenderAllRacks) {
  const RoomResult r = RoomEngine(small_room(3), 2).run();
  EXPECT_NE(r.to_table().find("rack"), std::string::npos);
  EXPECT_NE(r.to_json().find("\"per_rack\""), std::string::npos);
  // CSV: header + one row per rack.
  const std::string csv = r.to_csv();
  EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 4);
}

// ----------------------------------------------- migration benefit

TEST(MigrationBenefit, ThermalHeadroomBeatsStaticOnTheDefaultScenario) {
  // The acceptance scenario of bench_migration_benefit, shortened: moving
  // load from the hot half of the room into the cold half must cut pooled
  // deadline violations.  Deterministic (fixed seed), so an exact
  // comparison is safe.
  RoomParams stat = default_room_scenario(4, 42, 600.0);
  RoomParams headroom = stat;
  headroom.scheduler = "thermal-headroom";

  const RoomResult r_static = RoomEngine(stat, 4).run();
  const RoomResult r_headroom = RoomEngine(headroom, 4).run();
  EXPECT_GT(r_headroom.migration_events, 0u);
  EXPECT_LT(r_headroom.pooled_deadline_violations(),
            r_static.pooled_deadline_violations());
}

}  // namespace
}  // namespace fsc
