// Integration tests: Ziegler-Nichols tuning against the real simulated
// plant (the §IV-A/B procedure end to end).
//
// These are the slowest tests in the suite (each ultimate-gain search runs
// dozens of closed-loop experiments); durations are kept moderate.
#include <gtest/gtest.h>

#include "metrics/oscillation.hpp"
#include "sim/zn_harness.hpp"

namespace fsc {
namespace {

ZnHarnessParams harness() {
  ZnHarnessParams p;
  p.experiment_duration_s = 2400.0;
  return p;
}

ZnSearchParams search() {
  ZnSearchParams p;
  p.kp_initial = 10.0;
  p.refine_iterations = 8;
  return p;
}

TEST(OperatingPoint, UtilizationSolvesSteadyState) {
  ServerParams sp;
  const double u = operating_utilization(sp, 2000.0, 75.0);
  ASSERT_GT(u, 0.0);
  ASSERT_LT(u, 1.0);
  const double p = sp.cpu_power.power(u);
  EXPECT_NEAR(sp.thermal.steady_state_junction(p, 2000.0), 75.0, 1e-6);
}

TEST(OperatingPoint, HigherSpeedNeedsMoreUtilization) {
  ServerParams sp;
  const double u2000 = operating_utilization(sp, 2000.0, 75.0);
  const double u6000 = operating_utilization(sp, 6000.0, 75.0);
  EXPECT_GT(u6000, u2000);
}

TEST(OperatingPoint, UnreachableReferenceClamps) {
  ServerParams sp;
  EXPECT_DOUBLE_EQ(operating_utilization(sp, 8500.0, 200.0), 1.0);
  EXPECT_DOUBLE_EQ(operating_utilization(sp, 8500.0, 10.0), 0.0);
}

TEST(RegionExperiment, LowGainConverges) {
  const auto exp2000 = make_region_experiment(ServerParams{}, 2000.0, harness());
  const auto series = exp2000(5.0);
  OscillationParams op;
  op.hysteresis = 0.25;
  EXPECT_EQ(analyse_oscillation(series, op).verdict, OscillationVerdict::kConverged);
}

TEST(RegionExperiment, HugeGainOscillates) {
  const auto exp2000 = make_region_experiment(ServerParams{}, 2000.0, harness());
  const auto series = exp2000(5000.0);
  OscillationParams op;
  op.hysteresis = 0.25;
  EXPECT_NE(analyse_oscillation(series, op).verdict, OscillationVerdict::kConverged);
}

TEST(RegionExperiment, DeterministicAcrossCalls) {
  const auto exp = make_region_experiment(ServerParams{}, 2000.0, harness());
  EXPECT_EQ(exp(50.0), exp(50.0));
}

TEST(TuneRegion, FindsGainsAt2000Rpm) {
  const auto region = tune_region(ServerParams{}, 2000.0, harness(), search());
  EXPECT_DOUBLE_EQ(region.ref_speed_rpm, 2000.0);
  EXPECT_GT(region.gains.kp, 0.0);
  EXPECT_GT(region.gains.ki, 0.0);
  EXPECT_GT(region.gains.kd, 0.0);
}

TEST(TuneRegion, HighSpeedRegionHasLargerKp) {
  // The plant gain dT/ds at 6000 rpm is ~8x smaller than at 2000 rpm, so
  // the ultimate (and hence tuned) proportional gain must be substantially
  // larger - the nonlinearity that motivates gain scheduling (§IV-B).
  const auto r2000 = tune_region(ServerParams{}, 2000.0, harness(), search());
  const auto r6000 = tune_region(ServerParams{}, 6000.0, harness(), search());
  EXPECT_GT(r6000.gains.kp, 2.0 * r2000.gains.kp);
}

TEST(TuneSchedule, TwoRegionScheduleOrdered) {
  const auto schedule =
      tune_schedule(ServerParams{}, {2000.0, 6000.0}, harness(), search());
  ASSERT_EQ(schedule.size(), 2u);
  EXPECT_DOUBLE_EQ(schedule.region(0).ref_speed_rpm, 2000.0);
  EXPECT_DOUBLE_EQ(schedule.region(1).ref_speed_rpm, 6000.0);
  EXPECT_LT(schedule.region(0).gains.kp, schedule.region(1).gains.kp);
}

TEST(TuneSchedule, RejectsEmptyRegionList) {
  EXPECT_THROW(tune_schedule(ServerParams{}, {}, harness(), search()),
               std::invalid_argument);
}

}  // namespace
}  // namespace fsc
