// Trace pack (workload/trace_store.*) tests: byte-level golden layout,
// round-trips, dedup, quantization bounds, corrupt-file rejection, the
// WorkloadTable gather path's bit-identity with the per-lane virtual path
// (standalone and through the CoupledRackEngine across thread counts and
// chunk sizes), the real-trace importers, and the trace-synthesis fitter.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <random>
#include <stdexcept>
#include <string>
#include <vector>

#include "coord/coupled_rack_engine.hpp"
#include "workload/importers.hpp"
#include "workload/trace_fit.hpp"
#include "workload/trace_io.hpp"
#include "workload/trace_store.hpp"
#include "workload/workload_table.hpp"

namespace fsc {
namespace {

namespace fs = std::filesystem;

std::string temp_pack_path(const std::string& name) {
  return ::testing::TempDir() + name;
}

std::vector<unsigned char> read_bytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return std::vector<unsigned char>(std::istreambuf_iterator<char>(in),
                                    std::istreambuf_iterator<char>());
}

void write_bytes(const std::string& path,
                 const std::vector<unsigned char>& bytes) {
  std::ofstream out(path, std::ios::binary);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
}

// ----------------------------------------------------------------- writer

TEST(TracePack, GoldenLayoutBytes) {
  // The format IS the layout: header fields, meta record, and payload at
  // the documented offsets.  If this test breaks, readers of existing
  // packs break — bump pack::kVersion instead of editing expectations.
  const std::string path = temp_pack_path("golden.fst");
  TracePackWriter writer;
  writer.add_trace("g", {0.0, 0.5, 1.0}, 2.0);
  writer.write(path);

  const auto bytes = read_bytes(path);
  ASSERT_EQ(bytes.size(), 48u + 88u + 3u * 2u);
  EXPECT_EQ(std::memcmp(bytes.data(), "FSCPACK1", 8), 0);
  std::uint32_t version = 0, count = 0;
  std::memcpy(&version, bytes.data() + 8, 4);
  std::memcpy(&count, bytes.data() + 12, 4);
  EXPECT_EQ(version, pack::kVersion);
  EXPECT_EQ(count, 1u);
  std::uint64_t payload_words = 0;
  std::memcpy(&payload_words, bytes.data() + 16, 8);
  EXPECT_EQ(payload_words, 3u);

  pack::TraceMeta meta;
  std::memcpy(&meta, bytes.data() + 48, sizeof meta);
  EXPECT_EQ(meta.offset_words, 0u);
  EXPECT_EQ(meta.count, 3u);
  EXPECT_DOUBLE_EQ(meta.sample_period_s, 2.0);
  EXPECT_STREQ(meta.name, "g");

  std::uint16_t q[3];
  std::memcpy(q, bytes.data() + 48 + 88, sizeof q);
  EXPECT_EQ(q[0], 0u);
  EXPECT_EQ(q[1], 32768u);  // lround(0.5 * 65535)
  EXPECT_EQ(q[2], 65535u);
}

TEST(TracePack, WriterRejectsBadInput) {
  TracePackWriter writer;
  EXPECT_THROW(writer.add_trace("x", {}, 1.0), std::invalid_argument);
  EXPECT_THROW(writer.add_trace("x", {0.5}, 0.0), std::invalid_argument);
  EXPECT_THROW(writer.add_trace("", {0.5}, 1.0), std::invalid_argument);
  EXPECT_THROW(writer.write(temp_pack_path("empty.fst")), std::runtime_error);
}

TEST(TracePack, DedupSharesIdenticalColumns) {
  const std::vector<double> shape = {0.1, 0.4, 0.7, 0.2};
  TracePackWriter writer;
  writer.add_trace("a", shape, 1.0);
  writer.add_trace("b", shape, 1.0);          // same column, same period
  writer.add_trace("c", shape, 2.0);          // same samples, new period
  writer.add_trace("d", {0.1, 0.4, 0.7, 0.3}, 1.0);  // different samples
  EXPECT_EQ(writer.size(), 4u);
  EXPECT_EQ(writer.unique_columns(), 3u);

  const std::string path = temp_pack_path("dedup.fst");
  writer.write(path);
  // File holds three columns' worth of payload, four metadata entries.
  EXPECT_EQ(fs::file_size(path), 48u + 4u * 88u + 3u * 4u * 2u);

  const auto store = TraceStore::open(path);
  ASSERT_EQ(store->size(), 4u);
  EXPECT_EQ(store->samples(0), store->samples(1));  // literally shared
  EXPECT_EQ(store->content_hash(0), store->content_hash(1));
  EXPECT_NE(store->content_hash(0), store->content_hash(2));  // period hashed
  EXPECT_NE(store->samples(0), store->samples(3));
}

// ----------------------------------------------------------------- reader

TEST(TraceStore, RoundTripPreservesQuantizedSamplesAndMetadata) {
  std::mt19937_64 rng(7u);
  std::uniform_real_distribution<double> uni(0.0, 1.0);
  std::vector<double> samples(1000);
  for (double& s : samples) s = uni(rng);

  const std::string path = temp_pack_path("roundtrip.fst");
  TracePackWriter writer;
  writer.add_trace("noise", samples, 300.0);
  writer.write(path);

  const auto store = TraceStore::open(path);
  ASSERT_EQ(store->size(), 1u);
  EXPECT_EQ(store->name(0), "noise");
  EXPECT_DOUBLE_EQ(store->sample_period(0), 300.0);
  EXPECT_EQ(store->sample_count(0), 1000u);
  EXPECT_DOUBLE_EQ(store->duration(0), 300000.0);
  EXPECT_EQ(store->find("noise"), 0u);
  EXPECT_EQ(store->find("absent"), store->size());
  const std::uint16_t* q = store->samples(0);
  for (std::size_t i = 0; i < samples.size(); ++i) {
    ASSERT_EQ(q[i], pack::quantize(samples[i])) << i;
  }
  EXPECT_EQ(store->content_hash(0),
            pack::content_hash(q, samples.size(), 300.0));
}

TEST(TraceStore, QuantizationErrorWithinHalfStep) {
  // |dequant(quantize(u)) - u| <= 0.5/65535 for every u in [0, 1].
  const double bound = 0.5 * pack::kDequant + 1e-15;
  std::mt19937_64 rng(11u);
  std::uniform_real_distribution<double> uni(0.0, 1.0);
  for (int i = 0; i < 100000; ++i) {
    const double u = uni(rng);
    const double back =
        static_cast<double>(pack::quantize(u)) * pack::kDequant;
    ASSERT_LE(std::abs(back - u), bound) << "u=" << u;
  }
  EXPECT_EQ(pack::quantize(0.0), 0u);
  EXPECT_EQ(pack::quantize(1.0), 65535u);
  EXPECT_EQ(pack::quantize(-3.0), 0u);    // clamped
  EXPECT_EQ(pack::quantize(2.0), 65535u);  // clamped
  EXPECT_DOUBLE_EQ(65535.0 * pack::kDequant, 1.0);  // full scale round-trips
}

TEST(TraceStore, RejectsCorruptFiles) {
  const std::string good_path = temp_pack_path("good.fst");
  TracePackWriter writer;
  writer.add_trace("t", {0.2, 0.4, 0.6, 0.8}, 1.0);
  writer.write(good_path);
  const auto good = read_bytes(good_path);

  const std::string bad_path = temp_pack_path("bad.fst");

  // Truncated payload: samples missing.
  auto bytes = good;
  bytes.resize(bytes.size() - 3);
  write_bytes(bad_path, bytes);
  EXPECT_THROW(TraceStore::open(bad_path), std::runtime_error);

  // Trailing garbage after the payload.
  bytes = good;
  bytes.push_back(0xAB);
  write_bytes(bad_path, bytes);
  EXPECT_THROW(TraceStore::open(bad_path), std::runtime_error);

  // Bad magic.
  bytes = good;
  bytes[0] = 'X';
  write_bytes(bad_path, bytes);
  EXPECT_THROW(TraceStore::open(bad_path), std::runtime_error);

  // Unsupported version.
  bytes = good;
  bytes[8] = 0x7F;
  write_bytes(bad_path, bytes);
  EXPECT_THROW(TraceStore::open(bad_path), std::runtime_error);

  // Shorter than a header.
  bytes.assign(10, 0);
  write_bytes(bad_path, bytes);
  EXPECT_THROW(TraceStore::open(bad_path), std::runtime_error);

  // Column pointing past the payload.
  bytes = good;
  std::uint64_t huge = 1000;
  std::memcpy(bytes.data() + 48, &huge, 8);  // meta[0].offset_words
  write_bytes(bad_path, bytes);
  EXPECT_THROW(TraceStore::open(bad_path), std::runtime_error);

  EXPECT_THROW(TraceStore::open(temp_pack_path("nonexistent.fst")),
               std::runtime_error);
}

TEST(TraceStore, ErrorsNameTheDefect) {
  const std::string good_path = temp_pack_path("named.fst");
  TracePackWriter writer;
  writer.add_trace("t", {0.5, 0.5}, 1.0);
  writer.write(good_path);
  auto bytes = read_bytes(good_path);

  const std::string bad_path = temp_pack_path("named_bad.fst");
  bytes.resize(bytes.size() - 1);
  write_bytes(bad_path, bytes);
  try {
    TraceStore::open(bad_path);
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("truncated"), std::string::npos)
        << e.what();
  }
}

// --------------------------------------------------- stored-trace workload

TEST(StoredTraceWorkload, MatchesSampledWorkloadWithinQuantization) {
  std::vector<double> samples;
  for (int i = 0; i < 500; ++i) {
    samples.push_back(0.5 + 0.45 * std::sin(0.05 * i));
  }
  const double period = 300.0;
  const SampledWorkload dense(samples, period);

  const std::string path = temp_pack_path("equiv.fst");
  TracePackWriter writer;
  writer.add_workload("sine", dense);
  writer.write(path);
  const auto store = TraceStore::open(path);
  const StoredTraceWorkload stored(store, 0);

  std::mt19937_64 rng(3u);
  std::uniform_real_distribution<double> uni(0.0, 600.0 * period);
  const double bound = 0.5 * pack::kDequant + 1e-15;
  for (int i = 0; i < 20000; ++i) {
    const double t = uni(rng);
    ASSERT_NEAR(stored.demand(t), dense.demand(t), bound) << "t=" << t;
  }
  // And the stored value is EXACTLY the dequantized sample (ZOH semantics
  // identical to SampledWorkload's, via the shared zoh_index).
  for (std::size_t k = 0; k < samples.size(); ++k) {
    const double t = static_cast<double>(k) * period;
    ASSERT_EQ(stored.demand(t),
              static_cast<double>(stored.quantized()[k]) * pack::kDequant);
  }
  EXPECT_EQ(stored.demand(-5.0), stored.demand(0.0));  // clamps like Sampled
  EXPECT_EQ(stored.demand(1e12),
            static_cast<double>(stored.quantized()[samples.size() - 1]) *
                pack::kDequant);  // last sample held forever

  EXPECT_THROW(StoredTraceWorkload(store, 99), std::out_of_range);
}

TEST(StoredTraceWorkload, WorkloadsFromStoreCoverEveryTrace) {
  const std::string path = temp_pack_path("all.fst");
  TracePackWriter writer;
  writer.add_trace("one", {0.1}, 1.0);
  writer.add_trace("two", {0.9}, 1.0);
  writer.write(path);
  const auto workloads = workloads_from_store(TraceStore::open(path));
  ASSERT_EQ(workloads.size(), 2u);
  EXPECT_DOUBLE_EQ(workloads[0]->demand(0.0),
                   static_cast<double>(pack::quantize(0.1)) * pack::kDequant);
  EXPECT_DOUBLE_EQ(workloads[1]->demand(0.0),
                   static_cast<double>(pack::quantize(0.9)) * pack::kDequant);
}

TEST(StoredTraceWorkload, UnpackedCsvReplaysBitIdentically) {
  // stored_trace_to_csv at 17 digits -> workload_from_csv must reproduce
  // the dequantized values EXACTLY (this is CI's pack->replay smoke).
  std::mt19937_64 rng(5u);
  std::uniform_real_distribution<double> uni(0.0, 1.0);
  std::vector<double> samples(700);
  for (double& s : samples) s = uni(rng);

  const std::string path = temp_pack_path("unpack.fst");
  TracePackWriter writer;
  writer.add_trace("u", samples, 2.5);
  writer.write(path);
  const auto store = TraceStore::open(path);
  const auto csv = workload_from_csv(stored_trace_to_csv(*store, 0));
  const StoredTraceWorkload stored(store, 0);
  ASSERT_EQ(csv->size(), samples.size());
  EXPECT_DOUBLE_EQ(csv->sample_period(), 2.5);
  for (std::size_t k = 0; k < samples.size(); ++k) {
    const double t = static_cast<double>(k) * 2.5;
    ASSERT_EQ(csv->demand(t), stored.demand(t)) << k;
  }
}

// ----------------------------------------------------------- workload table

TEST(WorkloadTable, GatherMatchesPerLaneVirtualCallsExactly) {
  // Mixed lanes: dense SampledWorkloads and quantized StoredTraceWorkloads
  // at several cadences.  fill_demand must equal lane-by-lane demand() to
  // the bit, at control-grid times and random times.
  const std::string path = temp_pack_path("table.fst");
  TracePackWriter writer;
  std::mt19937_64 rng(13u);
  std::uniform_real_distribution<double> uni(0.0, 1.0);
  for (int trace = 0; trace < 3; ++trace) {
    std::vector<double> s(400);
    for (double& x : s) x = uni(rng);
    char name[16];
    std::snprintf(name, sizeof name, "t%d", trace);  // not operator+: PR105651
    writer.add_trace(name, s, trace == 0 ? 0.25 : (trace == 1 ? 60.0 : 300.0));
  }
  writer.write(path);
  const auto store = TraceStore::open(path);

  std::vector<std::shared_ptr<const Workload>> lanes;
  for (std::size_t i = 0; i < store->size(); ++i) {
    lanes.push_back(std::make_shared<StoredTraceWorkload>(store, i));
  }
  for (int i = 0; i < 3; ++i) {
    std::vector<double> s(256);
    for (double& x : s) x = uni(rng);
    lanes.push_back(std::make_shared<SampledWorkload>(s, 1.0 / 3.0));
  }

  WorkloadTable table;
  for (const auto& lane : lanes) ASSERT_TRUE(table.add_lane(*lane));
  ASSERT_EQ(table.lanes(), lanes.size());

  std::vector<double> gathered(lanes.size());
  std::uniform_real_distribution<double> tuni(0.0, 2e5);
  for (int rep = 0; rep < 5000; ++rep) {
    const double t = rep < 1000 ? static_cast<double>(rep) * 60.0
                                : tuni(rng);
    table.fill_demand(t, 0, lanes.size(), gathered.data());
    for (std::size_t i = 0; i < lanes.size(); ++i) {
      ASSERT_EQ(gathered[i], lanes[i]->demand(t)) << "t=" << t << " lane=" << i;
    }
  }

  // Sub-range fills only touch [lo, hi).
  std::vector<double> partial(lanes.size(), -1.0);
  table.fill_demand(0.0, 2, 4, partial.data());
  EXPECT_EQ(partial[0], -1.0);
  EXPECT_EQ(partial[1], -1.0);
  EXPECT_EQ(partial[2], lanes[2]->demand(0.0));
  EXPECT_EQ(partial[3], lanes[3]->demand(0.0));
  EXPECT_EQ(partial[4], -1.0);
}

TEST(WorkloadTable, RejectsNonSampledLanes) {
  WorkloadTable table;
  const LambdaWorkload exotic([](double) { return 0.5; });
  EXPECT_FALSE(table.add_lane(exotic));
  const ConstantWorkload constant(0.5);
  EXPECT_FALSE(table.add_lane(constant));
  const SampledWorkload fine({0.5}, 1.0);
  EXPECT_TRUE(table.add_lane(fine));
  EXPECT_EQ(table.lanes(), 1u);
}

// ------------------------------------------- gather through the rack engine

void expect_identical(const CoupledRackResult& a, const CoupledRackResult& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.slots[i].result.fan_energy_joules,
              b.slots[i].result.fan_energy_joules);
    EXPECT_EQ(a.slots[i].result.cpu_energy_joules,
              b.slots[i].result.cpu_energy_joules);
    EXPECT_EQ(a.slots[i].result.max_junction_celsius,
              b.slots[i].result.max_junction_celsius);
    EXPECT_EQ(a.slots[i].deadline_violations, b.slots[i].deadline_violations);
    EXPECT_EQ(a.slots[i].inlet_stats.mean(), b.slots[i].inlet_stats.mean());
  }
  EXPECT_EQ(a.total_energy_joules, b.total_energy_joules);
  EXPECT_EQ(a.deadline_violation_percent, b.deadline_violation_percent);
}

CoupledRackParams pack_driven_params(
    const std::shared_ptr<const TraceStore>& store) {
  CoupledRackParams p;
  p.rack.num_servers = 6;
  p.rack.base_seed = 99;
  p.rack.sim.duration_s = 120.0;
  p.rack.sim.initial_utilization = 0.1;
  p.coord.coordination_period_s = 30.0;
  p.rack.traces = workloads_from_store(store);
  return p;
}

TEST(GatherPath, BitIdenticalToPerLaneAcrossThreadsAndChunks) {
  // THE tentpole guarantee: gather on == gather off, exactly, for every
  // thread count and chunk size, on a pack-driven rack.
  const std::string path = temp_pack_path("engine.fst");
  TracePackWriter writer;
  std::mt19937_64 rng(21u);
  std::uniform_real_distribution<double> uni(0.05, 0.95);
  for (int trace = 0; trace < 4; ++trace) {
    std::vector<double> s(130);
    for (double& x : s) x = uni(rng);
    char name[16];
    std::snprintf(name, sizeof name, "w%d", trace);  // not operator+: PR105651
    writer.add_trace(name, s, 1.0);
  }
  writer.write(path);
  const auto store = TraceStore::open(path);

  CoupledRackParams off = pack_driven_params(store);
  off.gather = false;
  const CoupledRackResult reference = CoupledRackEngine(off, 1).run();

  for (std::size_t threads : {1u, 2u, 8u}) {
    for (std::size_t chunk : {std::size_t{1}, std::size_t{0}}) {  // 0 = auto
      CoupledRackParams on = pack_driven_params(store);
      on.gather = true;
      on.chunk = chunk;
      // snprintf, not string operator+: GCC 12's -Wrestrict false-fires on
      // the chained concatenation under -O2 (PR105651).
      char label[64];
      std::snprintf(label, sizeof label, "threads=%zu chunk=%zu", threads,
                    chunk);
      SCOPED_TRACE(label);
      expect_identical(reference, CoupledRackEngine(on, threads).run());
    }
  }
}

TEST(GatherPath, SyntheticWorkloadsAlsoGather) {
  // Default (synthetic) workloads are pre-sampled SampledWorkloads, so the
  // table engages there too — and must stay invisible.
  CoupledRackParams p;
  p.rack.num_servers = 5;
  p.rack.base_seed = 7;
  p.rack.sim.duration_s = 90.0;
  p.coord.coordination_period_s = 30.0;
  p.coordinator = "shared-fan-zone";
  p.coord.fan_zone_size = 2;

  CoupledRackParams off = p;
  off.gather = false;
  const CoupledRackResult a = CoupledRackEngine(off, 1).run();
  const CoupledRackResult b = CoupledRackEngine(p, 4).run();
  expect_identical(a, b);
}

// -------------------------------------------------------------- importers

TEST(Importers, GoogleTaskUsageAggregatesPerMachine) {
  const std::string text =
      "start_time,end_time,job_id,task_index,machine_id,mean_cpu_rate\n"
      "0,300000000,1,0,m1,0.25\n"
      "0,300000000,1,1,m1,0.25\n"
      "0,300000000,2,0,m2,0.10\n"
      "300000000,600000000,1,0,m1,0.40\n"
      "600000000,750000000,3,0,m1,0.50\n";  // half a bucket -> 0.25
  const auto traces = import_google_task_usage(text, 300.0);
  ASSERT_EQ(traces.size(), 2u);
  EXPECT_EQ(traces[0].name, "google-m1");  // sorted by machine id
  EXPECT_EQ(traces[1].name, "google-m2");
  ASSERT_EQ(traces[0].samples.size(), 3u);
  EXPECT_DOUBLE_EQ(traces[0].sample_period_s, 300.0);
  EXPECT_NEAR(traces[0].samples[0], 0.50, 1e-12);  // two tasks of 0.25
  EXPECT_NEAR(traces[0].samples[1], 0.40, 1e-12);
  EXPECT_NEAR(traces[0].samples[2], 0.25, 1e-12);  // 150 s of rate 0.5
  ASSERT_EQ(traces[1].samples.size(), 1u);
  EXPECT_NEAR(traces[1].samples[0], 0.10, 1e-12);
}

TEST(Importers, GoogleRejectsMalformedRows) {
  EXPECT_THROW(import_google_task_usage("0,1,2\n"), std::runtime_error);
  EXPECT_THROW(
      import_google_task_usage("0,bad_end,1,0,m1,0.5\n"),
      std::runtime_error);
  EXPECT_THROW(
      import_google_task_usage("300000000,200000000,1,0,m1,0.5\n"),  // end<start
      std::runtime_error);
  EXPECT_THROW(import_google_task_usage("header,only,row,with,no,data\n"),
               std::runtime_error);  // no usable rows
  try {
    import_google_task_usage(
        "0,300000000,1,0,m1,0.5\n0,300000000,1,0,m1,nope\n");
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos)
        << e.what();
  }
}

TEST(Importers, AzureVmReadingsHoldAcrossGaps) {
  const std::string text =
      "timestamp,vm_id,min_cpu,max_cpu,avg_cpu\n"
      "0,vmA,1,20,10\n"
      "300,vmA,1,30,20\n"
      "900,vmA,1,50,40\n"  // bucket 600 missing -> held at 0.20
      "0,vmB,1,10,5\n";
  const auto traces = import_azure_vm_cpu(text, 300.0);
  ASSERT_EQ(traces.size(), 2u);
  EXPECT_EQ(traces[0].name, "azure-vmA");
  ASSERT_EQ(traces[0].samples.size(), 4u);
  EXPECT_DOUBLE_EQ(traces[0].samples[0], 0.10);
  EXPECT_DOUBLE_EQ(traces[0].samples[1], 0.20);
  EXPECT_DOUBLE_EQ(traces[0].samples[2], 0.20);  // ZOH across the gap
  EXPECT_DOUBLE_EQ(traces[0].samples[3], 0.40);
  EXPECT_EQ(traces[1].name, "azure-vmB");
  ASSERT_EQ(traces[1].samples.size(), 1u);
  EXPECT_DOUBLE_EQ(traces[1].samples[0], 0.05);
}

TEST(Importers, BundledFixturesImportAndPack) {
  // The miniature fixtures committed under examples/traces/{google,azure}
  // must flow through importer -> pack -> store untouched.
  const std::string root = FSC_SOURCE_DIR;
  const auto google = import_trace_file(
      "google", root + "/examples/traces/google/task_usage_sample.csv");
  const auto azure = import_trace_file(
      "azure", root + "/examples/traces/azure/vm_cpu_readings_sample.csv");
  ASSERT_EQ(google.size(), 2u);  // two machines
  ASSERT_EQ(azure.size(), 2u);   // two VMs
  TracePackWriter writer;
  for (const auto& t : google) {
    writer.add_trace(t.name, t.samples, t.sample_period_s);
  }
  for (const auto& t : azure) {
    writer.add_trace(t.name, t.samples, t.sample_period_s);
  }
  const std::string path = temp_pack_path("fixtures.fst");
  writer.write(path);
  const auto store = TraceStore::open(path);
  EXPECT_EQ(store->size(), 4u);
  EXPECT_LT(store->find("google-4155527081"), store->size());
  EXPECT_LT(store->find("azure-vmA"), store->size());
  EXPECT_THROW(import_trace_file("unknown", "x"), std::runtime_error);
}

// ------------------------------------------------------------------ fitter

TEST(TraceFit, RecoversSinusoidParameters) {
  // A clean diurnal sinusoid: the fit must recover mean, amplitude, and
  // phase closely (single-bin DFT is exact on its own fundamental).
  const double period = 86400.0, dt = 300.0;
  const std::size_t n = static_cast<std::size_t>(period / dt) * 2;  // 2 days
  std::vector<double> samples(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double t = static_cast<double>(i) * dt;
    samples[i] = 0.5 + 0.2 * std::sin(2.0 * M_PI * t / period + 0.7);
  }
  const TraceFit fit = fit_trace(samples, dt);
  EXPECT_NEAR(fit.mean, 0.5, 1e-3);
  EXPECT_NEAR(fit.diurnal_amplitude, 0.2, 1e-3);
  EXPECT_NEAR(fit.diurnal_phase, 0.7, 1e-2);
  EXPECT_DOUBLE_EQ(fit.diurnal_period_s, 86400.0);
  EXPECT_LT(fit.noise_stddev, 1e-3);
  EXPECT_DOUBLE_EQ(fit.burst_fraction, 0.0);
}

TEST(TraceFit, SeededVariantsAreDeterministicAndDistinct) {
  std::vector<double> samples(600);
  for (std::size_t i = 0; i < samples.size(); ++i) {
    samples[i] = 0.4 + 0.1 * std::sin(0.01 * static_cast<double>(i));
  }
  const TraceFit fit = fit_trace(samples, 300.0);
  const auto a1 = synthesize_samples(fit, 500, 42);
  const auto a2 = synthesize_samples(fit, 500, 42);
  const auto b = synthesize_samples(fit, 500, 43);
  EXPECT_EQ(a1, a2);  // same seed -> same trace, always
  EXPECT_NE(a1, b);   // different seed -> different trace
  for (double u : a1) {
    ASSERT_GE(u, 0.0);
    ASSERT_LE(u, 1.0);
  }
  const auto w = synthesize_workload(fit, 86400.0, 7);
  EXPECT_EQ(w->size(), static_cast<std::size_t>(std::ceil(86400.0 / 300.0)));
  EXPECT_DOUBLE_EQ(w->sample_period(), 300.0);
}

TEST(TraceFit, BurstyTraceKeepsBurstMass) {
  // A flat 0.2 baseline with occasional 0.9 bursts: the fitted burst level
  // and fraction must reflect the spikes, and variants must contain them.
  std::vector<double> samples(2000, 0.2);
  std::mt19937_64 rng(17u);
  std::uniform_int_distribution<std::size_t> where(0, samples.size() - 5);
  for (int b = 0; b < 40; ++b) {
    const std::size_t at = where(rng);
    for (std::size_t k = 0; k < 4; ++k) samples[at + k] = 0.9;
  }
  const TraceFit fit = fit_trace(samples, 300.0);
  EXPECT_NEAR(fit.burst_level, 0.9, 0.05);
  EXPECT_GT(fit.burst_fraction, 0.01);
  EXPECT_GT(fit.burst_duration_s, 300.0);
  EXPECT_GT(fit.burst_start_prob, 0.0);
  const auto variant = synthesize_samples(fit, 2000, 1);
  const std::size_t high = static_cast<std::size_t>(
      std::count_if(variant.begin(), variant.end(),
                    [](double u) { return u > 0.6; }));
  EXPECT_GT(high, 0u);  // bursts survive synthesis
}

TEST(TraceFit, RejectsDegenerateInput) {
  EXPECT_THROW(fit_trace(std::vector<double>{}, 1.0), std::invalid_argument);
  EXPECT_THROW(fit_trace({0.5}, 0.0), std::invalid_argument);
  TraceFit unfitted;
  EXPECT_THROW(synthesize_samples(unfitted, 10, 1), std::invalid_argument);
  const TraceFit fit = fit_trace({0.5, 0.5, 0.5}, 1.0);
  EXPECT_THROW(synthesize_samples(fit, 0, 1), std::invalid_argument);
}

}  // namespace
}  // namespace fsc
