// fault/ subsystem tests: the empty-plan bit-identity contract (a run with
// no faults armed is EXPECT_EQ-identical to a build without the fault
// layer, across thread counts and chunk sizes), determinism of faulted
// runs under the same sweeps, component fault modes (sensor stuck /
// dropped / noisy, fan degraded / seized), blackout freezing at the
// barrier, the failsafe coordinator and room scheduler responses, the
// seeded scenario generator round-trip, and the predictor-backed
// evacuation pricing (the first cross-layer consumer of
// workload/predictor.hpp).
#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "actuator/fan_actuator.hpp"
#include "coord/coupled_rack_engine.hpp"
#include "coord/policies.hpp"
#include "fault/fault_generator.hpp"
#include "fault/fault_injector.hpp"
#include "fault/fault_plan.hpp"
#include "room/schedulers.hpp"
#include "sensor/sensor_chain.hpp"
#include "sim/server.hpp"
#include "util/rng.hpp"
#include "workload/predictor.hpp"

namespace fsc {
namespace {

CoupledRackParams small_params(std::size_t n = 6, double duration_s = 150.0) {
  CoupledRackParams p;
  p.rack.num_servers = n;
  p.rack.base_seed = 1234;
  p.rack.sim.duration_s = duration_s;
  p.rack.sim.initial_utilization = 0.1;
  p.rack.workload.base.duration_s = duration_s;
  p.coord.coordination_period_s = 30.0;
  p.coord.fan_zone_size = 4;
  return p;
}

void expect_identical(const CoupledRackResult& a, const CoupledRackResult& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.slots[i].result.fan_energy_joules,
              b.slots[i].result.fan_energy_joules);
    EXPECT_EQ(a.slots[i].result.cpu_energy_joules,
              b.slots[i].result.cpu_energy_joules);
    EXPECT_EQ(a.slots[i].deadline_violations, b.slots[i].deadline_violations);
    EXPECT_EQ(a.slots[i].result.max_junction_celsius,
              b.slots[i].result.max_junction_celsius);
    EXPECT_EQ(a.slots[i].inlet_stats.mean(), b.slots[i].inlet_stats.mean());
    EXPECT_EQ(a.slots[i].mean_cap_limit, b.slots[i].mean_cap_limit);
  }
  EXPECT_EQ(a.total_energy_joules, b.total_energy_joules);
  EXPECT_EQ(a.deadline_violation_percent, b.deadline_violation_percent);
  EXPECT_EQ(a.thermal_violation_percent, b.thermal_violation_percent);
}

FaultPlan mixed_plan() {
  FaultPlan plan;
  plan.events.push_back(
      {FaultKind::kSensorStuck, 0, 0, 30.0, -1.0, 45.0});
  plan.events.push_back(
      {FaultKind::kFanSeized, 0, 2, 60.0, 60.0, 0.0});
  plan.events.push_back(
      {FaultKind::kSlotBlackout, 0, 4, 30.0, 60.0, 0.0});
  return plan;
}

// ------------------------------------------------------ plan validation

TEST(FaultPlan, ValidateRejectsOutOfRangeVictims) {
  FaultPlan plan;
  plan.events.push_back({FaultKind::kSensorStuck, 0, 9, 0.0, -1.0, 45.0});
  EXPECT_THROW(plan.validate(1, 8), std::invalid_argument);
  plan.events[0].slot = 0;
  plan.events[0].rack = 2;
  EXPECT_THROW(plan.validate(2, 8), std::invalid_argument);
  plan.events[0].rack = 1;
  EXPECT_NO_THROW(plan.validate(2, 8));
}

TEST(FaultPlan, JsonRoundTrip) {
  const FaultPlan plan = mixed_plan();
  const FaultPlan back = FaultPlan::from_json_text(plan.to_json(2));
  EXPECT_EQ(plan, back);
  EXPECT_EQ(FaultPlan::from_json_text(FaultPlan{}.to_json()), FaultPlan{});
}

TEST(FaultPlan, ForRackRehomesToRackZero) {
  FaultPlan plan;
  plan.events.push_back({FaultKind::kSensorStuck, 0, 1, 0.0, -1.0, 45.0});
  plan.events.push_back({FaultKind::kFanSeized, 2, 3, 10.0, -1.0, 0.0});
  const FaultPlan r2 = plan.for_rack(2);
  ASSERT_EQ(r2.size(), 1u);
  EXPECT_EQ(r2.events[0].rack, 0u);
  EXPECT_EQ(r2.events[0].slot, 3u);
  EXPECT_TRUE(plan.for_rack(1).empty());
}

// ------------------------------------------------- component fault modes

TEST(SensorFault, StuckFreezesTheReading) {
  Rng rng(7);
  SensorChain chain = SensorChain::table1_defaults(rng);
  chain.reset(60.0);
  chain.set_fault(SensorFaultMode::kStuck, 42.0);
  // After the pipeline lag drains, every delivered sample is the stuck-at
  // value regardless of the true temperature.
  for (int i = 0; i < 30; ++i) chain.observe(75.0, 1.0);
  EXPECT_DOUBLE_EQ(chain.read(), 42.0);
  chain.clear_fault();
  for (int i = 0; i < 30; ++i) chain.observe(75.0, 1.0);
  EXPECT_NEAR(chain.read(), 75.0, 1.0);  // within one ADC step
}

TEST(SensorFault, DroppedGoesStale) {
  Rng rng(7);
  SensorChain chain = SensorChain::table1_defaults(rng);
  chain.reset(60.0);
  chain.set_fault(SensorFaultMode::kDropped, 0.0);
  for (int i = 0; i < 30; ++i) chain.observe(75.0, 1.0);
  EXPECT_NEAR(chain.read(), 60.0, 1.0);  // still the pre-fault reading
}

TEST(FanFault, SeizedWindmillsBelowTheFloor) {
  FanActuator fan(FanParams{}, 4000.0);
  fan.set_fault(FanFaultMode::kSeized, 0.0);
  fan.command(8000.0);
  for (int i = 0; i < 20; ++i) fan.step(1.0);
  EXPECT_DOUBLE_EQ(fan.speed(), FanActuator::kDefaultSeizedRpm);
  EXPECT_LT(fan.speed(), fan.params().min_rpm);
  fan.clear_fault();
  for (int i = 0; i < 20; ++i) fan.step(1.0);
  EXPECT_NEAR(fan.speed(), 8000.0, 1e-9);
}

TEST(FanFault, DegradedCapsTheCeiling) {
  FanActuator fan(FanParams{}, 2000.0);
  fan.set_fault(FanFaultMode::kDegradedMax, 3000.0);
  fan.command(8000.0);
  for (int i = 0; i < 20; ++i) fan.step(1.0);
  EXPECT_DOUBLE_EQ(fan.speed(), 3000.0);
}

// --------------------------------------------------- empty-plan identity

TEST(FaultInjection, EmptyPlanIsBitIdenticalAcrossThreadsAndChunks) {
  // The fault layer's core contract: an empty FaultPlan constructs no
  // injector at all, so the run is bit-identical to a pre-fault build —
  // enforced here against the 1-thread baseline across the full
  // thread x chunk sweep.
  CoupledRackParams p = small_params();
  p.coordinator = "shared-fan-zone";
  ASSERT_TRUE(p.faults.empty());
  const CoupledRackResult baseline = CoupledRackEngine(p, 1).run();
  for (std::size_t threads : {2u, 8u}) {
    for (std::size_t chunk : {std::size_t{1}, std::size_t{0}}) {
      CoupledRackParams q = p;
      q.chunk = chunk;
      SCOPED_TRACE(testing::Message()
                   << "threads=" << threads << " chunk=" << chunk);
      expect_identical(baseline, CoupledRackEngine(q, threads).run());
    }
  }
}

TEST(FaultInjection, NeverFiringPlanMatchesEmptyPlan) {
  // An injector that never arms anything must not perturb the run either:
  // stamp() only rewrites the detectability flags to their defaults.
  CoupledRackParams p = small_params();
  p.coordinator = "shared-fan-zone";
  const CoupledRackResult empty = CoupledRackEngine(p, 2).run();
  CoupledRackParams q = p;
  q.faults.events.push_back(
      {FaultKind::kFanSeized, 0, 0, 1e9, -1.0, 0.0});  // beyond the horizon
  expect_identical(empty, CoupledRackEngine(q, 2).run());
}

// ------------------------------------------------- faulted determinism

TEST(FaultInjection, FaultedRunIsDeterministicAcrossThreadsAndChunks) {
  CoupledRackParams p = small_params();
  p.coordinator = "failsafe";
  p.faults = mixed_plan();
  const CoupledRackResult baseline = CoupledRackEngine(p, 1).run();
  for (std::size_t threads : {2u, 8u}) {
    for (std::size_t chunk : {std::size_t{1}, std::size_t{0}}) {
      CoupledRackParams q = p;
      q.chunk = chunk;
      SCOPED_TRACE(testing::Message()
                   << "threads=" << threads << " chunk=" << chunk);
      expect_identical(baseline, CoupledRackEngine(q, threads).run());
    }
  }
}

TEST(FaultInjection, FaultsChangeTheOutcome) {
  CoupledRackParams p = small_params();
  p.coordinator = "shared-fan-zone";
  const CoupledRackResult healthy = CoupledRackEngine(p, 2).run();
  CoupledRackParams q = p;
  q.faults.events.push_back({FaultKind::kFanSeized, 0, 1, 30.0, -1.0, 0.0});
  const CoupledRackResult seized = CoupledRackEngine(q, 2).run();
  // A seized blower is a real physical change: the victim runs hotter.
  EXPECT_GT(seized.slots[1].result.max_junction_celsius,
            healthy.slots[1].result.max_junction_celsius);
}

TEST(FaultInjection, BatchedAndScalarAgreeUnderFaults) {
  // Forced-scalar lanes must leave the healthy lanes' batched stepping
  // byte-identical to the all-scalar path.
  CoupledRackParams p = small_params();
  p.coordinator = "failsafe";
  p.faults = mixed_plan();
  CoupledRackParams scalar = p;
  scalar.batched = false;
  expect_identical(CoupledRackEngine(p, 2).run(),
                   CoupledRackEngine(scalar, 2).run());
}

// ------------------------------------------------- barrier-level effects

TEST(FaultInjection, BlackoutFreezesTheObservation) {
  CoupledRackParams p = small_params(4);
  p.coordinator = "independent";
  p.faults.events.push_back(
      {FaultKind::kSlotBlackout, 0, 2, 60.0, -1.0, 0.0});
  CoupledRackEngine::Session session(p);
  std::vector<SlotObservation> before;  // the last gather that got out
  std::size_t dark_rounds = 0;
  while (!session.done()) {
    for (std::size_t s = 0; s < session.num_shards(); ++s) {
      session.run_shard(s);
    }
    session.coordinate_round();
    const auto& obs = session.last_observations();
    ASSERT_EQ(obs.size(), 4u);
    if (obs[2].telemetry_ok) {
      before = obs;
    } else {
      // Dark: every payload field is the frozen last-good view (the
      // blackout arms at the t = 60 barrier, so that is the t = 30
      // gather); only the clock advances.
      ++dark_rounds;
      ASSERT_FALSE(before.empty());
      EXPECT_EQ(obs[2].measured_temp, before[2].measured_temp);
      EXPECT_EQ(obs[2].fan_actual_rpm, before[2].fan_actual_rpm);
      EXPECT_EQ(obs[2].demand, before[2].demand);
      EXPECT_GT(obs[2].time_s, before[2].time_s);
      EXPECT_TRUE(obs[1].telemetry_ok);  // neighbors stay live
    }
  }
  EXPECT_GT(dark_rounds, 1u);
}

TEST(FaultInjection, DroppedSensorIsDetectedStuckIsNot) {
  CoupledRackParams p = small_params(4);
  p.faults.events.push_back(
      {FaultKind::kSensorDropped, 0, 0, 30.0, -1.0, 0.0});
  p.faults.events.push_back({FaultKind::kSensorStuck, 0, 1, 30.0, -1.0, 45.0});
  CoupledRackEngine::Session session(p);
  for (std::size_t s = 0; s < session.num_shards(); ++s) session.run_shard(s);
  session.coordinate_round();  // t = 30: both events armed at this barrier
  const auto& obs = session.last_observations();
  EXPECT_FALSE(obs[0].sensor_ok);  // staleness monitor trips
  EXPECT_TRUE(obs[1].sensor_ok);   // stuck-at lies within spec: undetected
  EXPECT_TRUE(obs[0].dark());
  EXPECT_FALSE(obs[1].dark());
}

TEST(Failsafe, FloorEngagesWithinOnePeriodOfBlackout) {
  CoupledRackParams p = small_params(4);
  p.coordinator = "failsafe";
  p.coord.fan_zone_size = 4;
  p.faults.events.push_back(
      {FaultKind::kSlotBlackout, 0, 2, 60.0, -1.0, 0.0});
  const double floor_rpm = FailsafeCoordinator(p.coord).floor_rpm();
  CoupledRackEngine::Session session(p);
  bool saw_post_blackout_round = false;
  while (!session.done()) {
    for (std::size_t s = 0; s < session.num_shards(); ++s) {
      session.run_shard(s);
    }
    session.coordinate_round();
    const auto& obs = session.last_observations();
    // The blackout arms at the t = 60 barrier; the very next gather must
    // already show every zone member commanded to at least the safe floor.
    if (session.time_s() > 60.0) {
      saw_post_blackout_round = true;
      for (const SlotObservation& o : obs) {
        // The dark slot's own observation is the frozen pre-blackout view;
        // the live zone members show the floor command in force.
        if (!o.telemetry_ok) continue;
        EXPECT_GE(o.fan_cmd_rpm, floor_rpm) << "t=" << session.time_s();
      }
    }
  }
  EXPECT_TRUE(saw_post_blackout_round);
  (void)session.finish();
}

// --------------------------------------------------- failsafe coordinator

TEST(FailsafeCoordinator, DarkSlotRampsTheWholeZone) {
  CoordinatorConfig cfg;
  cfg.fan_zone_size = 2;
  FailsafeCoordinator coord(cfg);
  std::vector<SlotObservation> obs(4);
  for (auto& o : obs) {
    o.fan_requested_rpm = 2000.0;
    o.fan_actual_rpm = 2000.0;
  }
  obs[1].telemetry_ok = false;  // zone {0, 1} has a dark member
  const auto directives = coord.coordinate(0.0, obs);
  ASSERT_EQ(directives.size(), 4u);
  EXPECT_DOUBLE_EQ(directives[0].fan_override_rpm, coord.floor_rpm());
  EXPECT_DOUBLE_EQ(directives[1].fan_override_rpm, coord.floor_rpm());
  // Zone {2, 3} is healthy: max member request, as shared-fan-zone would.
  EXPECT_DOUBLE_EQ(directives[2].fan_override_rpm, 2000.0);
  EXPECT_DOUBLE_EQ(directives[3].fan_override_rpm, 2000.0);
}

TEST(FailsafeCoordinator, SeizedBlowerCapsTheSlotAndMaxesTheZone) {
  CoordinatorConfig cfg;
  cfg.fan_zone_size = 2;
  FailsafeCoordinator coord(cfg);
  std::vector<SlotObservation> obs(2);
  for (auto& o : obs) {
    o.fan_requested_rpm = 3000.0;
    o.fan_actual_rpm = 3000.0;
    o.measured_temp = 60.0;
  }
  obs[0].fan_actual_rpm = 400.0;  // impossible for a healthy actuator
  obs[0].measured_temp = cfg.thermal_limit_celsius + 5.0;  // past the limit
  const auto directives = coord.coordinate(0.0, obs);
  EXPECT_DOUBLE_EQ(directives[0].cap_limit, cfg.failsafe_seized_cap);
  EXPECT_DOUBLE_EQ(directives[1].cap_limit, 1.0);
  EXPECT_DOUBLE_EQ(directives[0].fan_override_rpm, cfg.fan_max_rpm);
  EXPECT_DOUBLE_EQ(directives[1].fan_override_rpm, cfg.fan_max_rpm);
}

TEST(FailsafeCoordinator, SeizedThrottleReleasesOnceTheVictimCools) {
  // The seized cap duty-cycles: full cap at the limit, uncapped once the
  // victim has cooled out of the ramp band, partial cap in between.
  CoordinatorConfig cfg;
  cfg.fan_zone_size = 2;
  FailsafeCoordinator coord(cfg);
  std::vector<SlotObservation> obs(2);
  for (auto& o : obs) {
    o.fan_requested_rpm = 3000.0;
    o.fan_actual_rpm = 3000.0;
    o.measured_temp = 60.0;
  }
  obs[0].fan_actual_rpm = 400.0;

  obs[0].measured_temp = 40.0;  // well below the ramp band
  auto cool = coord.coordinate(0.0, obs);
  EXPECT_DOUBLE_EQ(cool[0].cap_limit, 1.0);
  // The zone still goes to max while the blower is seized.
  EXPECT_DOUBLE_EQ(cool[0].fan_override_rpm, cfg.fan_max_rpm);

  obs[0].measured_temp = cfg.thermal_limit_celsius - 5.0;  // inside the band
  auto warm = coord.coordinate(30.0, obs);
  EXPECT_LT(warm[0].cap_limit, 1.0);
  EXPECT_GT(warm[0].cap_limit, cfg.failsafe_seized_cap);
}

// ------------------------------------------------ failsafe room scheduler

std::vector<RackObservation> bright_room(std::size_t racks, double demand) {
  std::vector<RackObservation> obs(racks);
  for (std::size_t i = 0; i < racks; ++i) {
    obs[i].index = i;
    obs[i].slots = 8;
    obs[i].demand = demand;
    obs[i].demand_scale = 1.0;
    // Equal inlets: the thermal-headroom half stays quiet (spread below
    // the hysteresis deadband), isolating the evacuation path.
    obs[i].mean_inlet_celsius = 30.0;
  }
  return obs;
}

TEST(FailsafeRoomScheduler, EvacuatesTheDarkRack) {
  RoomSchedulerConfig cfg;
  cfg.num_racks = 3;
  cfg.total_slots = 24;
  cfg.cooldown_rounds = 0;
  FailsafeRoomScheduler sched(cfg);
  std::vector<RackDirective> out;
  auto obs = bright_room(3, 0.5);
  // Warm the forecast with live rounds first.
  for (int round = 0; round < 4; ++round) sched.schedule(round, obs, out);
  EXPECT_EQ(sched.evacuations(), 0u);
  EXPECT_NEAR(sched.last_forecast(0), 0.5, 1e-12);

  obs[0].dark_slots = 2;  // rack 0 goes dark
  sched.schedule(5.0, obs, out);
  EXPECT_EQ(sched.evacuations(), 1u);
  ASSERT_EQ(out.size(), 3u);
  EXPECT_LT(sched.scales()[0], 1.0);          // donor shed load
  EXPECT_GT(out[1].demand_scale, 1.0);        // coolest bright rack absorbs
  EXPECT_DOUBLE_EQ(sched.scales()[2], 1.0);   // bystander untouched
}

TEST(FailsafeRoomScheduler, ForecastIgnoresFrozenDarkReadings) {
  // The cross-layer predictor contract: a dark rack's frozen observation
  // must not be fed into its moving average — the forecast stays pinned at
  // the last live window, exactly what a hand-rolled predictor over the
  // same bright samples produces.
  RoomSchedulerConfig cfg;
  cfg.num_racks = 2;
  cfg.total_slots = 16;
  cfg.predictor_window = 3;
  cfg.cooldown_rounds = 0;
  FailsafeRoomScheduler sched(cfg);
  MovingAveragePredictor reference(cfg.predictor_window);
  std::vector<RackDirective> out;
  auto obs = bright_room(2, 0.4);
  for (int round = 0; round < 3; ++round) {
    obs[0].demand = 0.4 + 0.1 * round;
    reference.observe(obs[0].demand / obs[0].demand_scale);
    sched.schedule(round, obs, out);
    obs[0].demand_scale = sched.scales()[0];
    obs[0].demand *= obs[0].demand_scale;
  }
  EXPECT_DOUBLE_EQ(sched.last_forecast(0), reference.predict());

  const double pinned = sched.last_forecast(0);
  obs[0].dark_slots = 1;
  obs[0].demand = 99.0;  // absurd frozen reading: must be ignored
  sched.schedule(10.0, obs, out);
  EXPECT_DOUBLE_EQ(sched.last_forecast(0), pinned);
}

// ------------------------------------------------------------- generator

TEST(FaultScenarioGenerator, SeedRoundTrip) {
  FaultScenarioParams params;
  params.num_racks = 2;
  params.num_slots = 8;
  params.num_events = 6;
  const FaultScenarioGenerator gen(params);
  const FaultPlan a = gen.generate(123);
  const FaultPlan b = gen.generate(123);
  const FaultPlan c = gen.generate(124);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_EQ(a.size(), 6u);
  EXPECT_NO_THROW(a.validate(params.num_racks, params.num_slots));
  // And the JSON round-trip preserves a generated plan exactly.
  EXPECT_EQ(FaultPlan::from_json_text(a.to_json(2)), a);
}

TEST(FaultScenarioGenerator, EventsLandInsideTheWindow) {
  FaultScenarioParams params;
  params.num_events = 32;
  params.duration_s = 600.0;
  const FaultPlan plan = FaultScenarioGenerator(params).generate(7);
  for (const FaultEvent& e : plan.events) {
    EXPECT_GE(e.start_s, params.earliest_fraction * params.duration_s);
    EXPECT_LE(e.start_s, params.latest_fraction * params.duration_s);
    if (!e.permanent()) {
      EXPECT_GT(e.duration_s, 0.0);
    }
  }
}

// ------------------------------------------------------ injector surface

TEST(FaultInjector, CountsArmsAndClears) {
  CoupledRackParams p = small_params(4, 150.0);
  p.faults.events.push_back({FaultKind::kFanSeized, 0, 1, 30.0, 60.0, 0.0});
  CoupledRackEngine::Session session(p);
  while (!session.done()) {
    for (std::size_t s = 0; s < session.num_shards(); ++s) {
      session.run_shard(s);
    }
    session.coordinate_round();
  }
  // Armed at the 30 s barrier, cleared at the 90 s one; the slot's fan
  // slews home afterwards, so the final gather shows a live actuator.
  const auto& obs = session.last_observations();
  EXPECT_GT(obs[1].fan_actual_rpm, 1000.0);
  (void)session.finish();
}

TEST(FaultInjector, RejectsForeignRackEvents) {
  CoupledRackParams p = small_params(4);
  p.faults.events.push_back({FaultKind::kSensorStuck, 1, 0, 0.0, -1.0, 45.0});
  EXPECT_THROW(CoupledRackEngine(p, 1).run(), std::invalid_argument);
}

}  // namespace
}  // namespace fsc
