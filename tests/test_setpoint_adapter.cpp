// Unit tests for the predictive set-point adapter (§V-B).
#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>

#include "core/setpoint_adapter.hpp"
#include "util/rng.hpp"

namespace fsc {
namespace {

TEST(Setpoint, InitialPredictionGivesInitialReference) {
  SetpointAdapterParams p;  // 70-80 C, initial utilization 0.4
  SetpointAdapter a(p);
  EXPECT_NEAR(a.reference_temp(), 74.0, 1e-12);  // 70 + 10 * 0.4
}

TEST(Setpoint, LowLoadAttenuatesReference) {
  SetpointAdapter a(SetpointAdapterParams{});
  for (int i = 0; i < 20; ++i) a.observe(0.1);
  EXPECT_NEAR(a.reference_temp(), 71.0, 1e-9);  // 70 + 10 * 0.1
}

TEST(Setpoint, HighLoadAmplifiesReference) {
  SetpointAdapter a(SetpointAdapterParams{});
  for (int i = 0; i < 20; ++i) a.observe(0.9);
  EXPECT_NEAR(a.reference_temp(), 79.0, 1e-9);
}

TEST(Setpoint, LinearInPredictedUtilization) {
  SetpointAdapter a(SetpointAdapterParams{});
  for (int i = 0; i < 20; ++i) a.observe(0.5);
  EXPECT_NEAR(a.reference_temp(), 75.0, 1e-9);
  EXPECT_NEAR(a.predicted_utilization(), 0.5, 1e-9);
}

TEST(Setpoint, ReferenceAlwaysInsideConfiguredBand) {
  Rng rng(13);
  SetpointAdapter a(SetpointAdapterParams{});
  for (int i = 0; i < 500; ++i) {
    a.observe(rng.uniform(0.0, 1.0));
    EXPECT_GE(a.reference_temp(), 70.0);
    EXPECT_LE(a.reference_temp(), 80.0);
  }
}

TEST(Setpoint, MovingAverageFiltersNoise) {
  Rng rng(5);
  SetpointAdapterParams p;
  p.predictor_window = 16;
  SetpointAdapter a(p);
  for (int i = 0; i < 100; ++i) a.observe(0.5 + rng.gaussian(0.0, 0.04));
  EXPECT_NEAR(a.reference_temp(), 75.0, 0.5);
}

TEST(Setpoint, RespondsWithinWindowLength) {
  SetpointAdapterParams p;
  p.predictor_window = 4;
  SetpointAdapter a(p);
  for (int i = 0; i < 10; ++i) a.observe(0.1);
  for (int i = 0; i < 4; ++i) a.observe(0.9);  // window fully replaced
  EXPECT_NEAR(a.reference_temp(), 79.0, 1e-9);
}

TEST(Setpoint, ResetRestoresInitialPrediction) {
  SetpointAdapter a(SetpointAdapterParams{});
  for (int i = 0; i < 10; ++i) a.observe(1.0);
  a.reset();
  EXPECT_NEAR(a.reference_temp(), 74.0, 1e-12);
}

TEST(Setpoint, CustomPredictorInjection) {
  SetpointAdapterParams p;
  SetpointAdapter a(p, std::make_unique<EwmaPredictor>(1.0, 0.0));
  a.observe(0.8);
  EXPECT_NEAR(a.reference_temp(), 78.0, 1e-9);  // EWMA alpha=1 tracks exactly
}

TEST(Setpoint, ClampsOutOfRangeObservations) {
  SetpointAdapter a(SetpointAdapterParams{});
  for (int i = 0; i < 20; ++i) a.observe(5.0);  // clamped to 1.0
  EXPECT_NEAR(a.reference_temp(), 80.0, 1e-9);
}

TEST(Setpoint, RejectsBadParameters) {
  SetpointAdapterParams p;
  p.t_ref_min_celsius = 80.0;
  p.t_ref_max_celsius = 70.0;
  EXPECT_THROW(SetpointAdapter{p}, std::invalid_argument);
  SetpointAdapterParams q;
  EXPECT_THROW(SetpointAdapter(q, nullptr), std::invalid_argument);
}

}  // namespace
}  // namespace fsc
