// Unit tests for FanOnlyPolicy (the single-controller harness used by the
// Fig. 3/4 experiments).
#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>

#include "core/adaptive_pid_fan.hpp"
#include "core/fan_only_policy.hpp"
#include "core/solutions.hpp"

namespace fsc {
namespace {

std::unique_ptr<FanController> make_fan() {
  return std::make_unique<AdaptivePidFanController>(
      SolutionConfig::default_gain_schedule(), AdaptivePidFanParams{}, 3000.0);
}

DtmInputs inputs_at(double temp, double fan_cmd = 3000.0) {
  DtmInputs in;
  in.measured_temp = temp;
  in.quantization_step = 1.0;
  in.fan_speed_cmd = fan_cmd;
  in.fan_speed_actual = fan_cmd;
  in.cpu_cap = 1.0;
  in.demand = in.executed = 0.5;
  return in;
}

TEST(FanOnlyPolicy, RequiresController) {
  EXPECT_THROW(FanOnlyPolicy(nullptr, 75.0), std::invalid_argument);
}

TEST(FanOnlyPolicy, RejectsBadPeriods) {
  EXPECT_THROW(FanOnlyPolicy(make_fan(), 75.0, 0.0, 30.0), std::invalid_argument);
  EXPECT_THROW(FanOnlyPolicy(make_fan(), 75.0, 2.0, 1.0), std::invalid_argument);
}

TEST(FanOnlyPolicy, CapIsPinned) {
  FanOnlyPolicy p(make_fan(), 75.0, 1.0, 30.0, 0.8);
  const auto out = p.step(inputs_at(85.0));
  EXPECT_DOUBLE_EQ(out.cpu_cap, 0.8);
}

TEST(FanOnlyPolicy, CapClampedToValidRange) {
  FanOnlyPolicy p(make_fan(), 75.0, 1.0, 30.0, 1.7);
  EXPECT_DOUBLE_EQ(p.step(inputs_at(75.0)).cpu_cap, 1.0);
}

TEST(FanOnlyPolicy, FanActsOnlyAtFanInstants) {
  FanOnlyPolicy p(make_fan(), 75.0);
  auto in = inputs_at(85.0);
  const auto first = p.step(in);  // step 0 = fan instant
  EXPECT_GT(first.fan_speed_cmd, 3000.0);
  for (int i = 1; i < 30; ++i) {
    EXPECT_DOUBLE_EQ(p.step(in).fan_speed_cmd, 3000.0) << "step " << i;
  }
  EXPECT_GT(p.step(in).fan_speed_cmd, 3000.0);  // step 30
}

TEST(FanOnlyPolicy, ReferenceReportedAndSettable) {
  FanOnlyPolicy p(make_fan(), 75.0);
  EXPECT_DOUBLE_EQ(p.reference_temp(), 75.0);
  p.set_reference(70.0);
  EXPECT_DOUBLE_EQ(p.reference_temp(), 70.0);
  // A measurement equal to the old reference now reads as +5 hot.
  const auto out = p.step(inputs_at(75.0));
  EXPECT_GT(out.fan_speed_cmd, 3000.0);
}

TEST(FanOnlyPolicy, ResetRestartsFanClock) {
  FanOnlyPolicy p(make_fan(), 75.0);
  auto in = inputs_at(85.0);
  p.step(in);  // consume the step-0 fan instant
  p.step(in);  // step 1: no fan action
  p.reset();
  // After reset the very next step is a fan instant again.
  const auto out = p.step(in);
  EXPECT_GT(out.fan_speed_cmd, 3000.0);
}

TEST(FanOnlyPolicy, CustomFanPeriod) {
  FanOnlyPolicy p(make_fan(), 75.0, 1.0, 5.0);
  auto in = inputs_at(85.0);
  p.step(in);  // instant at step 0
  int actions = 0;
  for (int i = 1; i <= 10; ++i) {
    if (p.step(in).fan_speed_cmd > 3000.0) ++actions;
  }
  EXPECT_EQ(actions, 2);  // steps 5 and 10
}

}  // namespace
}  // namespace fsc
