// Unit tests for the deadzone CPU cap controller (§III-A, with the
// polarity erratum fixed as documented in DESIGN.md).
#include <gtest/gtest.h>

#include <stdexcept>

#include "core/cpu_capper.hpp"

namespace fsc {
namespace {

CapControlInput input_at(double temp, double cap) {
  CapControlInput in;
  in.measured_temp = temp;
  in.current_cap = cap;
  return in;
}

TEST(Capper, ThrottlesAboveHighThreshold) {
  DeadzoneCpuCapper c(CpuCapperParams{});  // 77/80, step 0.05
  EXPECT_NEAR(c.decide(input_at(81.0, 1.0)), 0.95, 1e-12);
}

TEST(Capper, RestoresBelowLowThreshold) {
  DeadzoneCpuCapper c(CpuCapperParams{});
  EXPECT_NEAR(c.decide(input_at(70.0, 0.8)), 0.85, 1e-12);
}

TEST(Capper, HoldsInsideComfortZone) {
  DeadzoneCpuCapper c(CpuCapperParams{});
  EXPECT_DOUBLE_EQ(c.decide(input_at(78.5, 0.8)), 0.8);
  EXPECT_DOUBLE_EQ(c.decide(input_at(77.0, 0.8)), 0.8);  // boundaries hold
  EXPECT_DOUBLE_EQ(c.decide(input_at(80.0, 0.8)), 0.8);
}

TEST(Capper, ClampsAtMinCap) {
  CpuCapperParams p;
  p.min_cap = 0.1;
  DeadzoneCpuCapper c(p);
  EXPECT_DOUBLE_EQ(c.decide(input_at(90.0, 0.12)), 0.1);
  EXPECT_DOUBLE_EQ(c.decide(input_at(90.0, 0.1)), 0.1);
}

TEST(Capper, ClampsAtMaxCap) {
  DeadzoneCpuCapper c(CpuCapperParams{});
  EXPECT_DOUBLE_EQ(c.decide(input_at(60.0, 0.98)), 1.0);
  EXPECT_DOUBLE_EQ(c.decide(input_at(60.0, 1.0)), 1.0);
}

TEST(Capper, RepeatedEmergencyWalksDownToFloor) {
  DeadzoneCpuCapper c(CpuCapperParams{});
  double cap = 1.0;
  for (int i = 0; i < 40; ++i) cap = c.decide(input_at(85.0, cap));
  EXPECT_DOUBLE_EQ(cap, 0.1);
}

TEST(Capper, RecoveryWalksBackUp) {
  DeadzoneCpuCapper c(CpuCapperParams{});
  double cap = 0.1;
  for (int i = 0; i < 40; ++i) cap = c.decide(input_at(60.0, cap));
  EXPECT_DOUBLE_EQ(cap, 1.0);
}

TEST(Capper, CustomStepSize) {
  CpuCapperParams p;
  p.step = 0.2;
  DeadzoneCpuCapper c(p);
  EXPECT_NEAR(c.decide(input_at(85.0, 1.0)), 0.8, 1e-12);
}

TEST(Capper, RejectsBadParameters) {
  CpuCapperParams p;
  p.t_low_celsius = 80.0;
  p.t_high_celsius = 77.0;
  EXPECT_THROW(DeadzoneCpuCapper{p}, std::invalid_argument);
  p = CpuCapperParams{};
  p.step = 0.0;
  EXPECT_THROW(DeadzoneCpuCapper{p}, std::invalid_argument);
  p = CpuCapperParams{};
  p.min_cap = 0.9;
  p.max_cap = 0.5;
  EXPECT_THROW(DeadzoneCpuCapper{p}, std::invalid_argument);
  p = CpuCapperParams{};
  p.max_cap = 1.5;
  EXPECT_THROW(DeadzoneCpuCapper{p}, std::invalid_argument);
}

TEST(Capper, ResetIsStatelessNoop) {
  DeadzoneCpuCapper c(CpuCapperParams{});
  c.decide(input_at(85.0, 1.0));
  c.reset();
  // The capper holds no dynamic state; decisions depend only on inputs.
  EXPECT_NEAR(c.decide(input_at(85.0, 1.0)), 0.95, 1e-12);
}

}  // namespace
}  // namespace fsc
