// PolicyFactory registry tests: built-ins, equivalence with the enum-based
// construction path, error handling, and runtime registration.
#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>

#include "coord/coordinator.hpp"
#include "core/policy_factory.hpp"
#include "core/solutions.hpp"
#include "room/scheduler.hpp"
#include "sim/simulation.hpp"
#include "workload/synthetic.hpp"

namespace fsc {
namespace {

TEST(PolicyFactory, BuiltinsAreRegistered) {
  auto& factory = PolicyFactory::instance();
  for (SolutionKind kind : all_solutions()) {
    EXPECT_TRUE(factory.contains(solution_key(kind)))
        << "missing " << solution_key(kind);
  }
  EXPECT_TRUE(factory.contains("fan-only"));
  EXPECT_TRUE(factory.contains("static-fan"));
  EXPECT_FALSE(factory.contains("no-such-policy"));

  const auto names = factory.names();
  EXPECT_GE(names.size(), 7u);
  EXPECT_TRUE(std::is_sorted(names.begin(), names.end()));
}

TEST(PolicyFactory, SolutionKeysAreUniqueAndStable) {
  EXPECT_EQ(solution_key(SolutionKind::kUncoordinated), "uncoordinated");
  EXPECT_EQ(solution_key(SolutionKind::kECoord), "e-coord");
  EXPECT_EQ(solution_key(SolutionKind::kRuleFixed), "r-coord");
  EXPECT_EQ(solution_key(SolutionKind::kRuleAdaptiveTref), "r-coord+a-tref");
  EXPECT_EQ(solution_key(SolutionKind::kRuleAdaptiveTrefSingleStep),
            "r-coord+a-tref+ss-fan");
}

TEST(PolicyFactory, FactoryPolicyMatchesEnumConstruction) {
  // The factory path and make_solution must build behaviourally identical
  // controllers: same trace on the same seeded scenario.
  const SolutionConfig cfg;
  const auto run_with = [&](DtmPolicy& policy) {
    Rng rng(7);
    Server server(ServerParams{}, cfg.initial_fan_rpm, rng);
    SquareNoiseParams wl;
    wl.duration_s = 400.0;
    const auto workload = make_square_noise_workload(wl, rng);
    SimulationParams sim;
    sim.duration_s = 400.0;
    sim.initial_utilization = 0.1;
    return trace_to_csv(run_simulation(server, policy, *workload, sim).trace);
  };

  for (SolutionKind kind : all_solutions()) {
    const auto via_enum = make_solution(kind, cfg);
    const auto via_factory =
        PolicyFactory::instance().make(solution_key(kind), cfg);
    EXPECT_EQ(run_with(*via_factory), run_with(*via_enum))
        << "divergence for " << solution_key(kind);
  }
}

TEST(PolicyFactory, UnknownNameThrowsListingKnownNames) {
  try {
    PolicyFactory::instance().make("bogus", SolutionConfig{});
    FAIL() << "expected std::out_of_range";
  } catch (const std::out_of_range& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("bogus"), std::string::npos);
    EXPECT_NE(what.find("r-coord"), std::string::npos);  // lists the options
  }
  EXPECT_THROW(PolicyFactory::instance().describe("bogus"), std::out_of_range);
}

TEST(PolicyFactory, RejectsDuplicateAndInvalidRegistration) {
  auto& factory = PolicyFactory::instance();
  EXPECT_THROW(factory.register_policy("r-coord", "dup",
                                       [](const SolutionConfig& cfg) {
                                         return make_solution(
                                             SolutionKind::kRuleFixed, cfg);
                                       }),
               std::invalid_argument);
  EXPECT_THROW(factory.register_policy("", "empty name",
                                       [](const SolutionConfig& cfg) {
                                         return make_solution(
                                             SolutionKind::kRuleFixed, cfg);
                                       }),
               std::invalid_argument);
  EXPECT_THROW(factory.register_policy("null-builder", "null", nullptr),
               std::invalid_argument);
}

TEST(PolicyFactory, RuntimeRegistrationIsUsable) {
  auto& factory = PolicyFactory::instance();
  const std::string name = "test-only-uncoordinated-alias";
  if (!factory.contains(name)) {
    factory.register_policy(name, "registered by test_policy_factory",
                            [](const SolutionConfig& cfg) {
                              return make_solution(
                                  SolutionKind::kUncoordinated, cfg);
                            });
  }
  EXPECT_TRUE(factory.contains(name));
  EXPECT_EQ(factory.describe(name), "registered by test_policy_factory");
  const auto policy = factory.make(name, SolutionConfig{});
  ASSERT_NE(policy, nullptr);
  EXPECT_DOUBLE_EQ(policy->reference_temp(), 75.0);
}

TEST(PolicyFactory, EveryRegisteredNameRoundTripsThroughMake) {
  // Enumerate-and-construct across all three registries, so a policy that
  // registers under one name but validates under another (or not at all)
  // is caught by ctest rather than at CLI runtime.  Uses workable default
  // configs; construction must neither throw nor return null, and each
  // product must report the name it was built from.
  const auto& factory = PolicyFactory::instance();

  const SolutionConfig policy_cfg;
  for (const std::string& name : factory.names()) {
    SCOPED_TRACE("policy " + name);
    std::unique_ptr<DtmPolicy> policy;
    ASSERT_NO_THROW(policy = factory.make(name, policy_cfg));
    EXPECT_NE(policy, nullptr);
    EXPECT_FALSE(factory.describe(name).empty());
  }

  const CoordinatorConfig coord_cfg;
  for (const std::string& name : factory.coordinator_names()) {
    SCOPED_TRACE("coordinator " + name);
    std::unique_ptr<RackCoordinator> coord;
    ASSERT_NO_THROW(coord = factory.make_coordinator(name, coord_cfg));
    ASSERT_NE(coord, nullptr);
    EXPECT_EQ(coord->name(), name);
    EXPECT_FALSE(factory.describe_coordinator(name).empty());
  }

  const RoomSchedulerConfig room_cfg;
  for (const std::string& name : factory.room_scheduler_names()) {
    SCOPED_TRACE("room scheduler " + name);
    std::unique_ptr<RoomScheduler> sched;
    ASSERT_NO_THROW(sched = factory.make_room_scheduler(name, room_cfg));
    ASSERT_NE(sched, nullptr);
    EXPECT_EQ(sched->name(), name);
    EXPECT_FALSE(factory.describe_room_scheduler(name).empty());
  }
}

TEST(PolicyFactory, StaticFanPinsWorstCaseSafeSpeed) {
  const SolutionConfig cfg;
  const auto policy = PolicyFactory::instance().make("static-fan", cfg);
  DtmInputs in;
  in.measured_temp = 90.0;  // even an emergency does not move it
  const auto hot = policy->step(in);
  in.measured_temp = 50.0;
  const auto cold = policy->step(in);
  EXPECT_EQ(hot.fan_speed_cmd, cold.fan_speed_cmd);
  EXPECT_EQ(hot.cpu_cap, 1.0);
  // Pinned speed keeps the worst-case (u = 1) steady state under the limit.
  const double tj = cfg.thermal.steady_state_junction(cfg.cpu_power.max_power(),
                                                      hot.fan_speed_cmd);
  EXPECT_LE(tj, cfg.thermal_limit_celsius + 1e-6);
}

}  // namespace
}  // namespace fsc
