// Facility tier: the two-level executor's determinism contract, exact
// equivalence with standalone rooms under an unconstrained plant, the
// cooling-plant saturation path, and the ScenarioSpec facility section.
//
// The heart of the suite is EXPECT_EQ bit-identity: a facility run's
// every observable — per-slot energies, violations, junction peaks,
// inlet statistics, per-rack scale stats, per-room plant exposure — is
// the same double-for-double across thread counts {1, 2, 8}, chunk
// sizes {1, auto}, and both executors {flat, two-level}.  Rooms interact
// only at facility barriers, and both executors drive the identical
// per-room operation sequence between them, so there is nothing
// schedule-dependent to observe.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "facility/cooling_plant.hpp"
#include "facility/facility_engine.hpp"
#include "room/room_engine.hpp"
#include "sim/scenario.hpp"
#include "util/hierarchical_executor.hpp"
#include "util/rng.hpp"

namespace fsc {
namespace {

// ------------------------------------------------ HierarchicalExecutor

TEST(HierarchicalExecutor, ValidatesConstruction) {
  EXPECT_THROW(HierarchicalExecutor(0, 1), std::invalid_argument);
  EXPECT_THROW(HierarchicalExecutor(1, 0), std::invalid_argument);
}

TEST(HierarchicalExecutor, TeamCoversEveryGroup) {
  // threads < groups: every group still gets its leader.
  HierarchicalExecutor ex(4, 2, /*pin=*/false);
  EXPECT_EQ(ex.num_groups(), 4u);
  EXPECT_EQ(ex.size(), 4u);
  std::size_t members = 0;
  for (std::size_t g = 0; g < ex.num_groups(); ++g) {
    EXPECT_GE(ex.group_size(g), 1u);
    members += ex.group_size(g);
  }
  EXPECT_EQ(members, ex.size());
}

TEST(HierarchicalExecutor, RunsEveryGroupAndShardExactlyOnce) {
  for (std::size_t groups : {1u, 2u, 3u}) {
    for (std::size_t threads : {1u, 2u, 8u}) {
      HierarchicalExecutor ex(groups, threads, /*pin=*/false);
      constexpr std::size_t kCount = 37;
      std::vector<std::vector<std::atomic<int>>> hits(groups);
      for (auto& v : hits) {
        std::vector<std::atomic<int>> row(kCount);
        v.swap(row);
      }
      for (int wave = 0; wave < 3; ++wave) {
        ex.run_groups([&](std::size_t g) {
          ex.run_in_group(g, kCount, [&, g](std::size_t i) {
            hits[g][i].fetch_add(1, std::memory_order_relaxed);
          });
        });
      }
      for (std::size_t g = 0; g < groups; ++g) {
        for (std::size_t i = 0; i < kCount; ++i) {
          EXPECT_EQ(hits[g][i].load(), 3)
              << "groups=" << groups << " threads=" << threads << " g=" << g
              << " i=" << i;
        }
      }
    }
  }
}

TEST(HierarchicalExecutor, RethrowsShardAndGroupErrors) {
  HierarchicalExecutor ex(2, 4, /*pin=*/false);
  // Inner shard error propagates through run_in_group to run_groups to
  // the caller.
  EXPECT_THROW(ex.run_groups([&](std::size_t g) {
    ex.run_in_group(g, 8, [g](std::size_t i) {
      if (g == 1 && i == 5) throw std::runtime_error("shard boom");
    });
  }),
               std::runtime_error);
  // Direct group-callback error.
  EXPECT_THROW(ex.run_groups([](std::size_t g) {
    if (g == 0) throw std::logic_error("group boom");
  }),
               std::logic_error);
  // The executor survives both.
  std::atomic<int> ok{0};
  ex.run_groups([&](std::size_t g) {
    ex.run_in_group(g, 4, [&](std::size_t) { ok.fetch_add(1); });
  });
  EXPECT_EQ(ok.load(), 8);
}

// ------------------------------------------------------- CoolingPlant

TEST(CoolingPlant, ValidatesAndAllocates) {
  CoolingPlantParams bad;
  bad.min_demand_scale = 0.0;
  EXPECT_THROW(CoolingPlant{bad}, std::invalid_argument);
  bad = CoolingPlantParams{};
  bad.supply_period_s = 0.0;
  EXPECT_THROW(CoolingPlant{bad}, std::invalid_argument);

  CoolingPlantParams p;
  p.capacity_watts = 1000.0;
  const CoolingPlant plant(p);
  EXPECT_TRUE(plant.constrained());
  std::vector<RoomCoolingAllocation> out;
  // Under capacity: exact identity.
  plant.allocate(0.0, {300.0, 400.0}, out);
  EXPECT_EQ(out[0].demand_scale, 1.0);
  EXPECT_EQ(out[0].supply_offset_c, 0.0);
  EXPECT_EQ(out[1].granted_watts, 400.0);
  // Over capacity: grants sum to capacity, scales drop, offsets rise.
  plant.allocate(0.0, {800.0, 800.0}, out);
  EXPECT_DOUBLE_EQ(out[0].granted_watts + out[1].granted_watts, 1000.0);
  EXPECT_LT(out[0].demand_scale, 1.0);
  EXPECT_GT(out[0].supply_offset_c, 0.0);
}

TEST(CoolingPlant, WeatherOffsetIsExactZeroAtZeroAmplitude) {
  const CoolingPlant flat(CoolingPlantParams{});
  EXPECT_EQ(flat.weather_offset(12345.6), 0.0);
  CoolingPlantParams p;
  p.supply_amplitude_c = 6.0;
  p.supply_period_s = 86400.0;
  const CoolingPlant diurnal(p);
  EXPECT_EQ(diurnal.weather_offset(0.0), 0.0);          // trough at phase 0
  EXPECT_DOUBLE_EQ(diurnal.weather_offset(43200.0), 6.0);  // peak at half
}

// ---------------------------------------------------- FacilityEngine

/// 2 rooms x 2 racks x 4 slots at a test-sized horizon, under a plant
/// constrained enough to throttle and a diurnal supply swing — the
/// identity sweep must hold on the *interesting* trajectories, not just
/// the unconstrained identity.
FacilityParams small_facility(bool two_level, std::size_t chunk) {
  FacilityParams f = default_facility_scenario(2, 2, 42, 300.0);
  for (RoomParams& room : f.rooms) {
    for (CoupledRackParams& rack : room.racks) {
      rack.rack.num_servers = 4;
      rack.chunk = chunk;
    }
  }
  f.plant.capacity_watts = 600.0;  // ~16 mid-load servers want more
  f.plant.supply_amplitude_c = 2.0;
  f.plant.supply_period_s = 600.0;
  f.two_level = two_level;
  f.pin_topology = false;  // CI runners dislike affinity calls
  return f;
}

void expect_identical(const CoupledRackResult& a, const CoupledRackResult& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.slots[i].result.fan_energy_joules,
              b.slots[i].result.fan_energy_joules);
    EXPECT_EQ(a.slots[i].result.cpu_energy_joules,
              b.slots[i].result.cpu_energy_joules);
    EXPECT_EQ(a.slots[i].deadline_violations, b.slots[i].deadline_violations);
    EXPECT_EQ(a.slots[i].deadline_periods, b.slots[i].deadline_periods);
    EXPECT_EQ(a.slots[i].result.max_junction_celsius,
              b.slots[i].result.max_junction_celsius);
    EXPECT_EQ(a.slots[i].inlet_stats.mean(), b.slots[i].inlet_stats.mean());
    EXPECT_EQ(a.slots[i].fan_override_rounds, b.slots[i].fan_override_rounds);
  }
  EXPECT_EQ(a.total_energy_joules, b.total_energy_joules);
  EXPECT_EQ(a.deadline_violation_percent, b.deadline_violation_percent);
}

void expect_identical(const RoomResult& a, const RoomResult& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    expect_identical(a.racks[i].result, b.racks[i].result);
    EXPECT_EQ(a.racks[i].final_demand_scale, b.racks[i].final_demand_scale);
    EXPECT_EQ(a.racks[i].demand_scale_stats.mean(),
              b.racks[i].demand_scale_stats.mean());
    EXPECT_EQ(a.racks[i].ambient_offset_stats.mean(),
              b.racks[i].ambient_offset_stats.mean());
  }
  EXPECT_EQ(a.migration_events, b.migration_events);
  EXPECT_EQ(a.room_rounds, b.room_rounds);
  EXPECT_EQ(a.total_energy_joules, b.total_energy_joules);
  EXPECT_EQ(a.deadline_violation_percent, b.deadline_violation_percent);
}

void expect_identical(const FacilityResult& a, const FacilityResult& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t r = 0; r < a.size(); ++r) {
    SCOPED_TRACE("room " + std::to_string(r));
    expect_identical(a.rooms[r].result, b.rooms[r].result);
    EXPECT_EQ(a.rooms[r].facility_scale_stats.mean(),
              b.rooms[r].facility_scale_stats.mean());
    EXPECT_EQ(a.rooms[r].facility_scale_stats.min(),
              b.rooms[r].facility_scale_stats.min());
    EXPECT_EQ(a.rooms[r].supply_offset_stats.mean(),
              b.rooms[r].supply_offset_stats.mean());
    EXPECT_EQ(a.rooms[r].supply_offset_stats.max(),
              b.rooms[r].supply_offset_stats.max());
  }
  EXPECT_EQ(a.fan_energy_joules, b.fan_energy_joules);
  EXPECT_EQ(a.cpu_energy_joules, b.cpu_energy_joules);
  EXPECT_EQ(a.total_energy_joules, b.total_energy_joules);
  EXPECT_EQ(a.deadline_violation_percent, b.deadline_violation_percent);
  EXPECT_EQ(a.facility_rounds, b.facility_rounds);
  EXPECT_EQ(a.plant_saturated_rounds, b.plant_saturated_rounds);
}

TEST(FacilityEngine, ValidatesConstruction) {
  EXPECT_THROW(FacilityEngine(FacilityParams{}, 1), std::invalid_argument);
  EXPECT_THROW(FacilityEngine(small_facility(true, 0), 0),
               std::invalid_argument);
  // Rooms must share the lockstep timing.
  FacilityParams p = small_facility(true, 0);
  p.rooms[1].racks[0].coord.coordination_period_s = 60.0;
  EXPECT_THROW(FacilityEngine(std::move(p), 1), std::invalid_argument);
  // The facility period must be a whole multiple of the room round.
  p = small_facility(true, 0);
  p.facility_period_s = 45.0;  // rounds are 30 s
  EXPECT_THROW(FacilityEngine(std::move(p), 1), std::invalid_argument);
  p = small_facility(true, 0);
  p.facility_period_s = 90.0;
  const FacilityEngine ok(std::move(p), 1);
  EXPECT_EQ(ok.rounds_per_barrier(), 3u);
}

TEST(FacilityEngine, BitIdenticalAcrossThreadsChunksAndExecutors) {
  const FacilityResult baseline =
      FacilityEngine(small_facility(/*two_level=*/true, /*chunk=*/0), 1).run();
  EXPECT_GT(baseline.facility_rounds, 0u);
  for (bool two_level : {true, false}) {
    for (std::size_t chunk : {std::size_t{1}, std::size_t{0}}) {
      for (std::size_t threads : {std::size_t{1}, std::size_t{2},
                                  std::size_t{8}}) {
        SCOPED_TRACE((two_level ? "two-level" : "flat") +
                     std::string(" chunk=") + std::to_string(chunk) +
                     " threads=" + std::to_string(threads));
        const FacilityResult run =
            FacilityEngine(small_facility(two_level, chunk), threads).run();
        expect_identical(baseline, run);
      }
    }
  }
}

TEST(FacilityEngine, UnconstrainedPlantEqualsStandaloneRooms) {
  // The facility recipe: rooms of the spec, re-seeded derive_seed(seed,
  // 1000 + room).  With an unconstrained plant and a flat supply profile
  // the facility must be EXACTLY K standalone room runs.
  ScenarioSpec spec;
  spec.rooms = 2;
  spec.racks = 2;
  spec.slots = 4;
  spec.seed = 77;
  spec.duration_s = 300.0;
  FacilityParams params = spec.build_facility();
  params.pin_topology = false;
  ASSERT_FALSE(CoolingPlant(params.plant).constrained());
  const FacilityResult fac = FacilityEngine(params, 2).run();

  for (std::size_t r = 0; r < 2; ++r) {
    SCOPED_TRACE("room " + std::to_string(r));
    ScenarioSpec room_spec = spec;
    room_spec.rooms = 0;
    room_spec.seed = derive_seed(spec.seed, 1000 + r);
    const RoomResult standalone =
        RoomEngine(room_spec.build_room(), 2).run();
    expect_identical(standalone, fac.rooms[r].result);
    // And the plant exposure is the identity.
    EXPECT_EQ(fac.rooms[r].facility_scale_stats.min(), 1.0);
    EXPECT_EQ(fac.rooms[r].supply_offset_stats.max(), 0.0);
  }
  EXPECT_EQ(fac.plant_saturated_rounds, 0u);
}

TEST(FacilityEngine, ConstrainedPlantSaturatesAndThrottles) {
  const FacilityResult run =
      FacilityEngine(small_facility(true, 0), 2).run();
  EXPECT_GT(run.plant_saturated_rounds, 0u);
  double min_scale = 1.0;
  double max_offset = 0.0;
  for (const FacilityRoomSummary& room : run.rooms) {
    min_scale = std::min(min_scale, room.facility_scale_stats.min());
    max_offset = std::max(max_offset, room.supply_offset_stats.max());
  }
  EXPECT_LT(min_scale, 1.0);  // somebody got throttled
  EXPECT_GT(max_offset, 0.0);  // unmet heat + diurnal swing reached supply
}

TEST(FacilityEngine, CoarseTimingRunsTheBenchConfig) {
  // The facility-coarse timing bench_facility_scaling uses, at test size:
  // 5 s plant step, 1 min control period, 10 min rounds, hourly barriers.
  FacilityParams f = default_facility_scenario(1, 2, 7, 7200.0);
  for (RoomParams& room : f.rooms) {
    for (CoupledRackParams& rack : room.racks) {
      rack.rack.num_servers = 4;
      rack.rack.sim.physics_dt_s = 5.0;
      rack.rack.sim.cpu_period_s = 60.0;
      rack.coord.coordination_period_s = 600.0;
    }
  }
  f.facility_period_s = 3600.0;
  f.pin_topology = false;
  const FacilityEngine engine(std::move(f), 1);
  EXPECT_EQ(engine.rounds_per_barrier(), 6u);
  const FacilityResult run = engine.run();
  // N facility periods yield N-1 coordination rounds: the last barrier
  // coincides with end-of-run, so there is nothing left to allocate.
  EXPECT_EQ(run.facility_rounds, 1u);
  EXPECT_GT(run.total_energy_joules, 0.0);
}

TEST(FacilityEngine, ReportsSerialize) {
  const FacilityResult run = FacilityEngine(small_facility(true, 0), 1).run();
  EXPECT_NE(run.to_table().find("plant"), std::string::npos);
  EXPECT_NE(run.to_json().find("\"rooms\""), std::string::npos);
  EXPECT_NE(run.to_json("{\"x\": 1}").find("\"manifest\""), std::string::npos);
  EXPECT_NE(run.to_csv().find("room"), std::string::npos);
}

// ------------------------------------------------ ScenarioSpec facility

TEST(ScenarioFacility, JsonRoundTripsFacilityKeys) {
  ScenarioSpec spec;
  spec.rooms = 3;
  spec.racks = 2;
  spec.slots = 4;
  spec.plant_capacity_watts = 1234.5;
  spec.supply_amplitude_c = 3.25;
  spec.supply_period_s = 43200.0;
  spec.facility_period_s = 90.0;
  spec.two_level = false;
  EXPECT_EQ(ScenarioSpec::from_json_text(spec.to_json()), spec);
}

TEST(ScenarioFacility, ValidationRejects) {
  ScenarioSpec spec;
  spec.rooms = 0;
  EXPECT_THROW(spec.build_facility(), std::invalid_argument);
  spec.rooms = 2;
  spec.supply_amplitude_c = -1.0;
  EXPECT_THROW(spec.build_facility(), std::invalid_argument);
  spec = ScenarioSpec{};
  spec.supply_period_s = 0.0;
  EXPECT_THROW(spec.validate(), std::invalid_argument);
  EXPECT_THROW(ScenarioSpec::from_json_text("{\"plant_watts\": 5}"),
               std::invalid_argument);  // typo'd knob must not run defaults
  // A non-multiple facility period passes the spec (the engine owns the
  // timing agreement) but is refused at engine construction.
  spec = ScenarioSpec{};
  spec.rooms = 2;
  spec.slots = 2;
  spec.facility_period_s = 45.0;
  EXPECT_THROW(FacilityEngine(spec.build_facility(), 1),
               std::invalid_argument);
}

TEST(ScenarioFacility, BuildFacilityWiresTheKnobs) {
  ScenarioSpec spec;
  spec.rooms = 2;
  spec.racks = 3;
  spec.slots = 4;
  spec.plant_capacity_watts = 999.0;
  spec.supply_amplitude_c = 1.5;
  spec.facility_period_s = 60.0;
  spec.two_level = false;
  const FacilityParams f = spec.build_facility();
  ASSERT_EQ(f.rooms.size(), 2u);
  EXPECT_EQ(f.rooms[0].racks.size(), 3u);
  EXPECT_EQ(f.rooms[0].racks[0].rack.num_servers, 4u);
  EXPECT_EQ(f.plant.capacity_watts, 999.0);
  EXPECT_EQ(f.plant.supply_amplitude_c, 1.5);
  EXPECT_EQ(f.facility_period_s, 60.0);
  EXPECT_FALSE(f.two_level);
  // Rooms are re-seeded per room, so their racks' seeds differ.
  EXPECT_NE(f.rooms[0].racks[0].rack.base_seed,
            f.rooms[1].racks[0].rack.base_seed);
}

}  // namespace
}  // namespace fsc
