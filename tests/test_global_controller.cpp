// Unit tests for the global DTM controller (Fig. 2 + §V composition).
#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>

#include "core/adaptive_pid_fan.hpp"
#include "core/cpu_capper.hpp"
#include "core/global_controller.hpp"
#include "core/solutions.hpp"

namespace fsc {
namespace {

std::unique_ptr<FanController> make_fan() {
  return std::make_unique<AdaptivePidFanController>(
      SolutionConfig::default_gain_schedule(), AdaptivePidFanParams{}, 3000.0);
}

std::unique_ptr<CpuCapController> make_capper() {
  return std::make_unique<DeadzoneCpuCapper>(CpuCapperParams{});
}

GlobalController make_controller(GlobalControllerParams p,
                                 bool with_setpoint = false,
                                 bool with_scaler = false) {
  std::optional<SetpointAdapter> sp;
  if (with_setpoint) sp.emplace(SetpointAdapterParams{});
  std::optional<SingleStepScaler> sc;
  if (with_scaler) {
    sc.emplace(SingleStepParams{}, [](double u) { return 2000.0 + 5000.0 * u; });
  }
  return GlobalController(p, make_fan(), make_capper(), std::move(sp),
                          std::move(sc));
}

DtmInputs inputs_at(double temp, double fan_cmd = 3000.0, double cap = 1.0) {
  DtmInputs in;
  in.measured_temp = temp;
  in.quantization_step = 1.0;
  in.fan_speed_cmd = fan_cmd;
  in.fan_speed_actual = fan_cmd;
  in.cpu_cap = cap;
  in.demand = 0.5;
  in.executed = 0.5;
  return in;
}

TEST(GlobalController, RequiresControllers) {
  GlobalControllerParams p;
  EXPECT_THROW(GlobalController(p, nullptr, make_capper(), std::nullopt,
                                std::nullopt),
               std::invalid_argument);
  EXPECT_THROW(GlobalController(p, make_fan(), nullptr, std::nullopt,
                                std::nullopt),
               std::invalid_argument);
}

TEST(GlobalController, RequiresAdapterWhenAdaptive) {
  GlobalControllerParams p;
  p.adaptive_setpoint = true;
  EXPECT_THROW(GlobalController(p, make_fan(), make_capper(), std::nullopt,
                                std::nullopt),
               std::invalid_argument);
}

TEST(GlobalController, RequiresScalerWhenSingleStep) {
  GlobalControllerParams p;
  p.single_step = true;
  EXPECT_THROW(GlobalController(p, make_fan(), make_capper(), std::nullopt,
                                std::nullopt),
               std::invalid_argument);
}

TEST(GlobalController, FixedReferenceByDefault) {
  auto gc = make_controller(GlobalControllerParams{});
  EXPECT_DOUBLE_EQ(gc.reference_temp(), 75.0);
}

TEST(GlobalController, AdaptiveReferenceTracksPrediction) {
  GlobalControllerParams p;
  p.adaptive_setpoint = true;
  auto gc = make_controller(p, /*with_setpoint=*/true);
  // Feed high demand for a while; the reference should rise above the
  // band midpoint.
  auto in = inputs_at(75.0);
  in.demand = 0.9;
  for (int i = 0; i < 120; ++i) gc.step(in);
  EXPECT_GT(gc.reference_temp(), 77.0);
  // And fall with low demand.
  in.demand = 0.05;
  for (int i = 0; i < 120; ++i) gc.step(in);
  EXPECT_LT(gc.reference_temp(), 72.0);
}

TEST(GlobalController, FanDecisionOnlyAtFanInstants) {
  // With a hot measurement the fan controller would raise the speed, but
  // only every fan_period steps.
  auto gc = make_controller(GlobalControllerParams{});
  auto in = inputs_at(79.0);
  const auto first = gc.step(in);       // step 0: fan instant
  EXPECT_GT(first.fan_speed_cmd, 3000.0);
  in.fan_speed_cmd = in.fan_speed_actual = 3000.0;  // pretend unchanged
  for (int i = 1; i < 30; ++i) {
    const auto out = gc.step(in);
    EXPECT_DOUBLE_EQ(out.fan_speed_cmd, 3000.0) << "step " << i;
  }
  const auto next = gc.step(in);  // step 30: fan instant again
  EXPECT_GT(next.fan_speed_cmd, 3000.0);
}

TEST(GlobalController, UncoordinatedAppliesBoth) {
  GlobalControllerParams p;
  p.coordinate = false;
  auto gc = make_controller(p);
  // Hot: fan up AND cap down in the same step.
  auto in = inputs_at(85.0, 3000.0, 1.0);
  const auto out = gc.step(in);
  EXPECT_GT(out.fan_speed_cmd, 3000.0);
  EXPECT_LT(out.cpu_cap, 1.0);
  EXPECT_EQ(gc.last_action(), CoordinationAction::kNone);
}

TEST(GlobalController, CoordinatedAppliesOnlyFanUpWhenHot) {
  auto gc = make_controller(GlobalControllerParams{});
  auto in = inputs_at(85.0, 3000.0, 1.0);
  const auto out = gc.step(in);
  // Table II: fan-up wins; the cap proposal (down) is dropped.
  EXPECT_GT(out.fan_speed_cmd, 3000.0);
  EXPECT_DOUBLE_EQ(out.cpu_cap, 1.0);
  EXPECT_EQ(gc.last_action(), CoordinationAction::kFanUp);
}

TEST(GlobalController, InFlightFanRampBlocksCapDown) {
  // The command is far above the actual speed (ramp in progress): the
  // coordination treats the step as fan-up and freezes the cap.
  auto gc = make_controller(GlobalControllerParams{});
  auto in = inputs_at(85.0, 3000.0, 1.0);
  gc.step(in);  // fan instant: command raised
  in.fan_speed_cmd = 6000.0;
  in.fan_speed_actual = 3500.0;  // still ramping
  const auto out = gc.step(in);  // not a fan instant
  EXPECT_EQ(gc.last_action(), CoordinationAction::kFanUp);
  EXPECT_DOUBLE_EQ(out.cpu_cap, 1.0);           // cap-down dropped
  EXPECT_DOUBLE_EQ(out.fan_speed_cmd, 6000.0);  // command maintained
}

TEST(GlobalController, CapDownAppliesWhenFanSettled) {
  auto gc = make_controller(GlobalControllerParams{});
  auto in = inputs_at(85.0, 8500.0, 1.0);
  gc.step(in);  // fan instant: already at max, no fan proposal change
  in.fan_speed_cmd = in.fan_speed_actual = 8500.0;
  const auto out = gc.step(in);  // capper acts alone
  EXPECT_LT(out.cpu_cap, 1.0);
  EXPECT_EQ(gc.last_action(), CoordinationAction::kCapDown);
}

TEST(GlobalController, CapUpWinsOverFanDown) {
  // Cool measurement with a throttled cap: the fan wants down, the capper
  // wants up; Table II gives the step to the cap.
  auto gc = make_controller(GlobalControllerParams{});
  auto in = inputs_at(70.0, 6000.0, 0.5);
  const auto out = gc.step(in);  // fan instant: fan proposes down
  EXPECT_EQ(gc.last_action(), CoordinationAction::kCapUp);
  EXPECT_GT(out.cpu_cap, 0.5);
  EXPECT_DOUBLE_EQ(out.fan_speed_cmd, 6000.0);
}

TEST(GlobalController, SingleStepOverridesOnDegradation) {
  GlobalControllerParams p;
  p.single_step = true;
  p.adaptive_setpoint = true;
  auto gc = make_controller(p, true, true);
  auto in = inputs_at(76.0, 3000.0, 0.5);
  in.last_degradation = 0.2;  // above the 0.05 threshold
  const auto out = gc.step(in);
  EXPECT_DOUBLE_EQ(out.fan_speed_cmd, 8500.0);
  EXPECT_TRUE(gc.single_step_active());
}

TEST(GlobalController, SingleStepIgnoredBelowThreshold) {
  GlobalControllerParams p;
  p.single_step = true;
  auto gc = make_controller(p, false, true);
  auto in = inputs_at(75.0, 3000.0, 1.0);
  in.last_degradation = 0.01;
  gc.step(in);
  EXPECT_FALSE(gc.single_step_active());
}

TEST(GlobalController, ResetClearsEverything) {
  GlobalControllerParams p;
  p.adaptive_setpoint = true;
  auto gc = make_controller(p, true);
  auto in = inputs_at(79.0);
  in.demand = 0.9;
  for (int i = 0; i < 100; ++i) gc.step(in);
  gc.reset();
  // Prediction back to the initial value -> reference back to 74.
  EXPECT_NEAR(gc.reference_temp(), 70.0 + 10.0 * 0.4, 1e-9);
  EXPECT_EQ(gc.last_action(), CoordinationAction::kNone);
}

TEST(GlobalController, RejectsBadPeriods) {
  GlobalControllerParams p;
  p.cpu_period_s = 0.0;
  EXPECT_THROW(make_controller(p), std::invalid_argument);
  p = GlobalControllerParams{};
  p.fan_period_s = 0.5;  // below cpu period
  EXPECT_THROW(make_controller(p), std::invalid_argument);
}

}  // namespace
}  // namespace fsc
