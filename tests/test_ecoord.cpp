// Unit tests for the E-coord baseline (energy-greedy coordination).
#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>

#include "core/adaptive_pid_fan.hpp"
#include "core/cpu_capper.hpp"
#include "core/ecoord.hpp"
#include "core/solutions.hpp"

namespace fsc {
namespace {

ECoordPolicy make_policy(ECoordParams p = ECoordParams{}) {
  return ECoordPolicy(
      p,
      std::make_unique<AdaptivePidFanController>(
          SolutionConfig::default_gain_schedule(), AdaptivePidFanParams{}, 3000.0),
      std::make_unique<DeadzoneCpuCapper>(CpuCapperParams{}),
      CpuPowerModel::table1_defaults(), FanPowerModel::table1_defaults(),
      ServerThermalModel::table1_defaults());
}

DtmInputs inputs_at(double temp, double fan_cmd, double cap, double demand = 0.5) {
  DtmInputs in;
  in.measured_temp = temp;
  in.quantization_step = 1.0;
  in.fan_speed_cmd = fan_cmd;
  in.fan_speed_actual = fan_cmd;
  in.cpu_cap = cap;
  in.demand = demand;
  in.executed = std::min(demand, cap);
  return in;
}

TEST(ECoord, RequiresControllers) {
  EXPECT_THROW(ECoordPolicy(ECoordParams{}, nullptr,
                            std::make_unique<DeadzoneCpuCapper>(CpuCapperParams{}),
                            CpuPowerModel::table1_defaults(),
                            FanPowerModel::table1_defaults(),
                            ServerThermalModel::table1_defaults()),
               std::invalid_argument);
}

TEST(ECoord, CapDownIsFreeCooling) {
  auto p = make_policy();
  // Throttling saves energy while cooling: efficiency is the sentinel.
  EXPECT_GT(p.cap_down_efficiency(3000.0, 0.8), 1e6);
}

TEST(ECoord, CapDownAtFloorHasNoEfficiency) {
  auto p = make_policy();
  EXPECT_DOUBLE_EQ(p.cap_down_efficiency(3000.0, 0.1), 0.0);
}

TEST(ECoord, FanUpEfficiencyPositiveAndFinite) {
  auto p = make_policy();
  const double eff = p.fan_up_efficiency(3000.0, 0.7);
  EXPECT_GT(eff, 0.0);
  EXPECT_LT(eff, 1e6);
}

TEST(ECoord, FanUpEfficiencyDropsAtHighSpeed) {
  // Cubic power growth makes fan cooling progressively less efficient.
  auto p = make_policy();
  EXPECT_GT(p.fan_up_efficiency(2000.0, 0.7), p.fan_up_efficiency(7000.0, 0.7));
}

TEST(ECoord, FanUpAtMaxHasNoEfficiency) {
  auto p = make_policy();
  EXPECT_DOUBLE_EQ(p.fan_up_efficiency(8500.0, 0.7), 0.0);
}

TEST(ECoord, FanDownSavingIsCubic) {
  auto p = make_policy();
  EXPECT_GT(p.fan_down_saving(8000.0), p.fan_down_saving(3000.0));
}

TEST(ECoord, CapUpCostUsesDynamicPower) {
  auto p = make_policy();
  // One 0.05 cap step restores up to 0.05 * 64 W = 3.2 W.
  EXPECT_NEAR(p.cap_up_cost(0.5), 3.2, 1e-9);
  EXPECT_NEAR(p.cap_up_cost(1.0), 0.0, 1e-12);  // already at max
}

TEST(ECoord, EmergencyThrottlesInsteadOfBoostingFan) {
  auto p = make_policy();
  const auto out = p.step(inputs_at(85.0, 3000.0, 1.0, 0.8));
  EXPECT_LT(out.cpu_cap, 1.0);                    // throttled
  EXPECT_DOUBLE_EQ(out.fan_speed_cmd, 3000.0);    // fan untouched
}

TEST(ECoord, EmergencyAtCapFloorFinallyUsesFan) {
  auto p = make_policy();
  const auto out = p.step(inputs_at(85.0, 3000.0, 0.1, 0.8));
  EXPECT_DOUBLE_EQ(out.cpu_cap, 0.1);
  EXPECT_GT(out.fan_speed_cmd, 3000.0);
}

TEST(ECoord, RidesThermalEdgeViaModel) {
  // Comfortable temperature, fan far above the energy-minimal target: the
  // policy jumps the fan to the edge speed for the demanded power.
  auto p = make_policy();
  const auto out = p.step(inputs_at(75.0, 8000.0, 1.0, 0.7));
  EXPECT_LT(out.fan_speed_cmd, 4500.0);  // edge target for u=0.7 is ~3100
  EXPECT_GT(out.fan_speed_cmd, 1500.0);
  // The model target keeps the projected junction just inside 79 degC.
  const auto thermal = ServerThermalModel::table1_defaults();
  const auto cpu = CpuPowerModel::table1_defaults();
  EXPECT_LE(thermal.steady_state_junction(cpu.power(0.7), out.fan_speed_cmd),
            79.0 + 1e-6);
}

TEST(ECoord, DefersCapUpWhileHarvesting) {
  // Throttled cap, fan far above target: the descent wins the step and
  // the cap stays down (the criticised energy-first behaviour).
  auto p = make_policy();
  const auto out = p.step(inputs_at(75.0, 8000.0, 0.5, 0.7));
  EXPECT_DOUBLE_EQ(out.cpu_cap, 0.5);
  EXPECT_LT(out.fan_speed_cmd, 8000.0);
}

TEST(ECoord, RestoresCapOnceFanAtTarget) {
  auto p = make_policy();
  // Fan exactly at the edge target for u = 0.7: no descent pending, so the
  // capper's raise finally passes.
  const auto thermal = ServerThermalModel::table1_defaults();
  const auto cpu = CpuPowerModel::table1_defaults();
  const double target = thermal.min_speed_for_junction_limit(cpu.power(0.7), 79.0);
  const auto out = p.step(inputs_at(75.0, target, 0.5, 0.7));
  EXPECT_GT(out.cpu_cap, 0.5);
}

TEST(ECoord, ReferenceTempIsConfigured) {
  auto p = make_policy();
  EXPECT_DOUBLE_EQ(p.reference_temp(), 75.0);
}

TEST(ECoord, RejectsBadParams) {
  ECoordParams p;
  p.fan_period_s = 0.5;
  EXPECT_THROW(make_policy(p), std::invalid_argument);
  p = ECoordParams{};
  p.cap_step = 0.0;
  EXPECT_THROW(make_policy(p), std::invalid_argument);
}

TEST(ECoord, FanDividerDerivedFromPeriods) {
  // Default: 30 s fan period over 1 s cpu period.
  EXPECT_EQ(make_policy().fan_divider(), 30);

  ECoordParams p;
  p.cpu_period_s = 2.0;
  p.fan_period_s = 10.0;
  EXPECT_EQ(make_policy(p).fan_divider(), 5);

  p = ECoordParams{};
  p.fan_period_s = 1.0;  // equal periods: fan decided every step
  EXPECT_EQ(make_policy(p).fan_divider(), 1);
}

TEST(ECoord, RejectsNonIntegerPeriodRatio) {
  ECoordParams p;
  p.fan_period_s = 1.4;  // would silently round to a divider of 1 before
  EXPECT_THROW(make_policy(p), std::invalid_argument);
  p.fan_period_s = 30.5;
  EXPECT_THROW(make_policy(p), std::invalid_argument);
  p.cpu_period_s = 0.0;
  EXPECT_THROW(make_policy(p), std::invalid_argument);
}

TEST(ECoord, FanActsOnlyAtDerivedInstants) {
  ECoordParams p;
  p.fan_period_s = 5.0;
  auto policy = make_policy(p);
  // Comfortable temperature far above the model's edge target: the policy
  // re-targets the fan only at fan instants (steps 0, 5, 10, ...).
  int fan_moves = 0;
  for (int k = 0; k < 10; ++k) {
    const auto out = policy.step(inputs_at(75.0, 8000.0, 1.0, 0.7));
    if (out.fan_speed_cmd != 8000.0) ++fan_moves;
  }
  EXPECT_EQ(fan_moves, 2);  // k = 0 and k = 5
}

}  // namespace
}  // namespace fsc
