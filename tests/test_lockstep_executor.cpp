// LockstepExecutor unit tests: contiguous pre-assigned shard spans,
// exactly-once execution, epoch/barrier reuse across thousands of rounds,
// exception propagation (and survival), caller participation, and a
// determinism stress over 1/2/8 threads.
#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <map>
#include <mutex>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include "util/lockstep_executor.hpp"

namespace fsc {
namespace {

TEST(LockstepExecutor, RejectsZeroThreads) {
  EXPECT_THROW(LockstepExecutor(0), std::invalid_argument);
}

TEST(LockstepExecutor, ReportsSize) {
  LockstepExecutor exec(3);
  EXPECT_EQ(exec.size(), 3u);
}

TEST(LockstepExecutor, RunsEveryIndexExactlyOnce) {
  LockstepExecutor exec(8);
  constexpr std::size_t kCount = 1000;
  std::vector<std::atomic<int>> seen(kCount);
  exec.run(kCount, [&seen](std::size_t i) {
    seen[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (std::size_t i = 0; i < kCount; ++i) {
    EXPECT_EQ(seen[i].load(), 1) << "index " << i;
  }
}

TEST(LockstepExecutor, ZeroCountIsANoOp) {
  LockstepExecutor exec(4);
  exec.run(0, [](std::size_t) { FAIL() << "no shard should run"; });
}

TEST(LockstepExecutor, SingleThreadRunsInlineOnTheCaller) {
  LockstepExecutor exec(1);
  const std::thread::id caller = std::this_thread::get_id();
  std::size_t calls = 0;
  exec.run(16, [&](std::size_t) {
    EXPECT_EQ(std::this_thread::get_id(), caller);
    ++calls;
  });
  EXPECT_EQ(calls, 16u);
}

TEST(LockstepExecutor, ShardsAreContiguousPerParticipant) {
  // Record which thread ran each index; every thread's index set must be
  // one contiguous span (the pre-assigned [count*p/P, count*(p+1)/P)
  // partition), and the spans must tile [0, count).
  LockstepExecutor exec(4);
  constexpr std::size_t kCount = 103;  // not a multiple of the team size
  std::vector<std::thread::id> owner(kCount);
  exec.run(kCount,
           [&owner](std::size_t i) { owner[i] = std::this_thread::get_id(); });

  std::map<std::thread::id, std::pair<std::size_t, std::size_t>> spans;
  for (std::size_t i = 0; i < kCount; ++i) {
    auto [it, inserted] = spans.emplace(owner[i], std::make_pair(i, i));
    if (!inserted) {
      // Contiguity: each new index owned by this thread extends its span
      // by exactly one.
      EXPECT_EQ(i, it->second.second + 1)
          << "participant's shard span is not contiguous at index " << i;
      it->second.second = i;
    }
  }
  EXPECT_LE(spans.size(), 4u);
  std::size_t covered = 0;
  for (const auto& [id, span] : spans) covered += span.second - span.first + 1;
  EXPECT_EQ(covered, kCount);
}

TEST(LockstepExecutor, CountBelowTeamSizeStillCoversEveryIndex) {
  LockstepExecutor exec(8);
  std::vector<std::atomic<int>> seen(3);
  exec.run(3, [&seen](std::size_t i) {
    seen[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (std::size_t i = 0; i < 3; ++i) EXPECT_EQ(seen[i].load(), 1);
}

TEST(LockstepExecutor, EpochBarrierIsReusableAcrossThousandsOfRounds) {
  // The whole point of the persistent design: one executor, many rounds.
  // 2000 rounds x 16 shards with a per-round check that the previous
  // round fully completed before the next began (lockstep semantics).
  LockstepExecutor exec(4);
  std::atomic<long> total{0};
  long expected = 0;
  for (int round = 0; round < 2000; ++round) {
    exec.run(16, [&total](std::size_t) {
      total.fetch_add(1, std::memory_order_relaxed);
    });
    expected += 16;
    // run() returned, so every shard of this epoch must have landed.
    ASSERT_EQ(total.load(), expected) << "round " << round;
  }
}

TEST(LockstepExecutor, PropagatesShardExceptions) {
  LockstepExecutor exec(4);
  std::atomic<int> ran{0};
  EXPECT_THROW(exec.run(64,
                        [&ran](std::size_t i) {
                          if (i == 13) throw std::runtime_error("shard 13");
                          ran.fetch_add(1, std::memory_order_relaxed);
                        }),
               std::runtime_error);
  // Other participants' spans ran to completion (only the throwing
  // participant's span is cut short), and the executor stays usable.
  EXPECT_GT(ran.load(), 0);
  std::atomic<int> after{0};
  exec.run(64, [&after](std::size_t) {
    after.fetch_add(1, std::memory_order_relaxed);
  });
  EXPECT_EQ(after.load(), 64);
}

TEST(LockstepExecutor, PropagatesCallerShardExceptionsToo) {
  // Index 0 always lands in participant 0's span — the calling thread.
  LockstepExecutor exec(4);
  EXPECT_THROW(exec.run(8,
                        [](std::size_t i) {
                          if (i == 0) throw std::logic_error("caller shard");
                        }),
               std::logic_error);
  std::size_t calls = 0;
  std::mutex m;
  exec.run(8, [&](std::size_t) {
    std::lock_guard<std::mutex> lock(m);
    ++calls;
  });
  EXPECT_EQ(calls, 8u);
}

TEST(LockstepExecutor, DeterministicSumAcross128Threads) {
  // The same sharded reduction over 1/2/8 threads must produce the same
  // result when each shard writes only its own slot — the usage contract
  // of the lockstep engines.
  constexpr std::size_t kCount = 777;
  std::vector<double> reference;
  for (std::size_t threads : {1u, 2u, 8u}) {
    LockstepExecutor exec(threads);
    std::vector<double> values(kCount, 0.0);
    for (int round = 0; round < 50; ++round) {
      exec.run(kCount, [&values, round](std::size_t i) {
        values[i] += static_cast<double>(i % 17) * (round + 1);
      });
    }
    if (reference.empty()) {
      reference = values;
    } else {
      EXPECT_EQ(values, reference) << "threads=" << threads;
    }
  }
}

}  // namespace
}  // namespace fsc
