// Unit tests for src/power: CPU linear model (Eqn. 1), cubic fan law,
// energy metering.
#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "power/cpu_power.hpp"
#include "power/energy_meter.hpp"
#include "power/fan_power.hpp"

namespace fsc {
namespace {

// ---------------------------------------------------------------- CpuPowerModel

TEST(CpuPower, Table1Endpoints) {
  const auto m = CpuPowerModel::table1_defaults();
  EXPECT_DOUBLE_EQ(m.idle_power(), 96.0);   // Table I: P_idle
  EXPECT_DOUBLE_EQ(m.max_power(), 160.0);   // Table I: P_max
  EXPECT_DOUBLE_EQ(m.dynamic_power(), 64.0);
}

TEST(CpuPower, LinearInUtilization) {
  const auto m = CpuPowerModel::table1_defaults();
  EXPECT_DOUBLE_EQ(m.power(0.0), 96.0);
  EXPECT_DOUBLE_EQ(m.power(0.5), 128.0);
  EXPECT_DOUBLE_EQ(m.power(1.0), 160.0);
}

TEST(CpuPower, ClampsUtilization) {
  const auto m = CpuPowerModel::table1_defaults();
  EXPECT_DOUBLE_EQ(m.power(-0.5), 96.0);
  EXPECT_DOUBLE_EQ(m.power(1.5), 160.0);
}

TEST(CpuPower, InverseRoundTrip) {
  const auto m = CpuPowerModel::table1_defaults();
  for (double u : {0.0, 0.1, 0.35, 0.7, 1.0}) {
    EXPECT_NEAR(m.utilization_for_power(m.power(u)), u, 1e-12);
  }
}

TEST(CpuPower, InverseClamps) {
  const auto m = CpuPowerModel::table1_defaults();
  EXPECT_DOUBLE_EQ(m.utilization_for_power(50.0), 0.0);   // below idle
  EXPECT_DOUBLE_EQ(m.utilization_for_power(500.0), 1.0);  // above max
}

TEST(CpuPower, RejectsNegativeParameters) {
  EXPECT_THROW(CpuPowerModel(-1.0, 10.0), std::invalid_argument);
  EXPECT_THROW(CpuPowerModel(10.0, -1.0), std::invalid_argument);
}

TEST(CpuPower, ZeroDynamicPowerInverseIsZero) {
  const CpuPowerModel m(100.0, 0.0);
  EXPECT_DOUBLE_EQ(m.utilization_for_power(100.0), 0.0);
}

// ---------------------------------------------------------------- FanPowerModel

TEST(FanPower, Table1MaxPoint) {
  const auto m = FanPowerModel::table1_defaults();
  EXPECT_DOUBLE_EQ(m.max_speed(), 8500.0);
  EXPECT_DOUBLE_EQ(m.power(8500.0), 29.4);  // Table I: fan power per socket
}

TEST(FanPower, CubicRelationship) {
  const auto m = FanPowerModel::table1_defaults();
  // P(s/2) = P(s)/8 is the signature of a cubic law.
  EXPECT_NEAR(m.power(4250.0), 29.4 / 8.0, 1e-12);
  EXPECT_NEAR(m.power(2125.0), 29.4 / 64.0, 1e-12);
}

TEST(FanPower, ZeroAtZeroSpeed) {
  const auto m = FanPowerModel::table1_defaults();
  EXPECT_DOUBLE_EQ(m.power(0.0), 0.0);
}

TEST(FanPower, ClampsAboveMax) {
  const auto m = FanPowerModel::table1_defaults();
  EXPECT_DOUBLE_EQ(m.power(20000.0), 29.4);
}

TEST(FanPower, SpeedForPowerRoundTrip) {
  const auto m = FanPowerModel::table1_defaults();
  for (double s : {1000.0, 3000.0, 6000.0, 8500.0}) {
    EXPECT_NEAR(m.speed_for_power(m.power(s)), s, 1e-6);
  }
}

TEST(FanPower, RejectsBadParameters) {
  EXPECT_THROW(FanPowerModel(0.0, 10.0), std::invalid_argument);
  EXPECT_THROW(FanPowerModel(-100.0, 10.0), std::invalid_argument);
  EXPECT_THROW(FanPowerModel(1000.0, -1.0), std::invalid_argument);
}

TEST(FanPower, HalvingSpeedSavesSevenEighths) {
  // The headline energy argument of the paper (P ~ s^3): halving fan speed
  // cuts fan power by 87.5 %.
  const auto m = FanPowerModel::table1_defaults();
  const double full = m.power(6000.0);
  const double half = m.power(3000.0);
  EXPECT_NEAR(half / full, 0.125, 1e-12);
}

// ---------------------------------------------------------------- EnergyMeter

TEST(EnergyMeter, AccumulatesSeparately) {
  EnergyMeter m;
  m.accumulate(100.0, 10.0, 2.0);
  m.accumulate(50.0, 5.0, 1.0);
  EXPECT_DOUBLE_EQ(m.cpu_energy(), 250.0);
  EXPECT_DOUBLE_EQ(m.fan_energy(), 25.0);
  EXPECT_DOUBLE_EQ(m.total_energy(), 275.0);
  EXPECT_DOUBLE_EQ(m.elapsed(), 3.0);
}

TEST(EnergyMeter, AveragePower) {
  EnergyMeter m;
  m.accumulate(100.0, 0.0, 10.0);
  EXPECT_DOUBLE_EQ(m.average_power(), 100.0);
}

TEST(EnergyMeter, EmptyAveragePowerIsZero) {
  const EnergyMeter m;
  EXPECT_DOUBLE_EQ(m.average_power(), 0.0);
}

TEST(EnergyMeter, RejectsNegativeDt) {
  EnergyMeter m;
  EXPECT_THROW(m.accumulate(1.0, 1.0, -0.1), std::invalid_argument);
}

TEST(EnergyMeter, ResetZeroes) {
  EnergyMeter m;
  m.accumulate(10.0, 10.0, 5.0);
  m.reset();
  EXPECT_DOUBLE_EQ(m.total_energy(), 0.0);
  EXPECT_DOUBLE_EQ(m.elapsed(), 0.0);
}

TEST(EnergyMeter, ZeroDtIsNoop) {
  EnergyMeter m;
  m.accumulate(100.0, 100.0, 0.0);
  EXPECT_DOUBLE_EQ(m.total_energy(), 0.0);
}

}  // namespace
}  // namespace fsc
