// batch/simd/ subsystem tests, at every rung of the ladder:
//
//   * dispatch: width names round-trip, the scalar fallback is always
//     supported, uncompiled widths throw, mode resolution honours
//     off/on/auto;
//   * vector math: the polynomial pow/exp of EVERY width supported on this
//     host is measured against libm over the kernel's domains and must meet
//     the ULP bounds documented in batch/simd/vmath.hpp;
//   * ServerBatch: at a fixed width the SIMD path is bit-identical across
//     range decompositions (chunking/threading cannot change a trajectory),
//     its fan-speed trajectory is bit-identical to the reference path (the
//     slew pass uses no fma and no polynomials), its thermal trajectory is
//     ULP-bounded against the reference, and its memo telemetry is exact;
//   * full drivers: coupled-rack and room runs with the vector path enabled
//     agree with the scalar-expression reference run to tight tolerances
//     (EXPECT_EQ on every integer observable), and are bit-identical across
//     chunk {1, 3, 7, auto, N} x threads {1, 2, 8} at a fixed width.
//
// CI additionally re-runs this whole binary with FSC_SIMD forced to each
// compiled width (and under ASan/UBSan and -ffp-contract=off), which turns
// the driver-level tests into forced-dispatch coverage per width.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <memory>
#include <stdexcept>
#include <vector>

#include "batch/server_batch.hpp"
#include "batch/simd/dispatch.hpp"
#include "coord/coupled_rack_engine.hpp"
#include "room/room_engine.hpp"
#include "sim/server.hpp"
#include "util/cpu_features.hpp"
#include "util/rng.hpp"
#include "util/ulp.hpp"

namespace fsc {
namespace {

using simd::SimdMode;
using simd::Width;

constexpr Width kAllWidths[] = {Width::kScalar, Width::kSse2, Width::kAvx2,
                                Width::kNeon};

// ---------------------------------------------------------------- dispatch

TEST(SimdDispatch, WidthNamesRoundTrip) {
  for (Width w : kAllWidths) {
    const auto parsed = simd::parse_width(simd::width_name(w));
    ASSERT_TRUE(parsed.has_value()) << simd::width_name(w);
    EXPECT_EQ(*parsed, w);
  }
  EXPECT_FALSE(simd::parse_width("").has_value());
  EXPECT_FALSE(simd::parse_width("avx512").has_value());
  EXPECT_FALSE(simd::parse_width("AVX2").has_value());
}

TEST(SimdDispatch, ScalarFallbackAlwaysAvailable) {
  EXPECT_TRUE(simd::width_compiled(Width::kScalar));
  EXPECT_TRUE(simd::width_supported(Width::kScalar));
  const std::vector<Width> widths = simd::supported_widths();
  ASSERT_FALSE(widths.empty());
  EXPECT_EQ(widths.front(), Width::kScalar);
  // best_width is one of the supported widths, and has_vector_isa is
  // exactly "best is wider than the fallback".
  EXPECT_NE(std::find(widths.begin(), widths.end(), simd::best_width()),
            widths.end());
  EXPECT_EQ(simd::has_vector_isa(), simd::best_width() != Width::kScalar);
  // Supported implies compiled, and a compiled width has real entry points.
  for (Width w : widths) {
    EXPECT_TRUE(simd::width_compiled(w));
    EXPECT_NE(simd::step_fn(w), nullptr);
    EXPECT_NE(simd::pow_fn(w), nullptr);
    EXPECT_NE(simd::exp_fn(w), nullptr);
  }
}

TEST(SimdDispatch, UncompiledWidthThrows) {
  for (Width w : kAllWidths) {
    if (simd::width_compiled(w)) continue;
    EXPECT_THROW(simd::step_fn(w), std::invalid_argument);
    EXPECT_THROW(simd::pow_fn(w), std::invalid_argument);
    EXPECT_THROW(simd::exp_fn(w), std::invalid_argument);
  }
}

TEST(SimdDispatch, ResolveModeSemantics) {
  EXPECT_FALSE(simd::resolve_mode(SimdMode::kOff).has_value());
  const auto on = simd::resolve_mode(SimdMode::kOn);
  ASSERT_TRUE(on.has_value());
  EXPECT_TRUE(simd::width_supported(*on));
  const auto auto_mode = simd::resolve_mode(SimdMode::kAuto);
  if (simd::has_vector_isa()) {
    ASSERT_TRUE(auto_mode.has_value());
    EXPECT_EQ(*auto_mode, *on);  // same env-or-best resolution
  } else {
    EXPECT_FALSE(auto_mode.has_value());
  }
}

TEST(SimdDispatch, ReportLinesAreNonEmpty) {
  EXPECT_FALSE(cpu_features_line().empty());
  const std::string line = simd::dispatch_line();
  EXPECT_NE(line.find("simd dispatch: "), std::string::npos);
  EXPECT_NE(line.find(simd::width_name(simd::best_width())),
            std::string::npos);
}

// ----------------------------------------- vector math: ULP bounds vs libm

/// Max ULP distance between `fn` applied element-wise and libm exp over a
/// uniform grid on [lo, hi].
std::uint64_t max_exp_ulp(simd::ExpFn fn, double lo, double hi,
                          std::size_t samples) {
  std::vector<double> x(samples), out(samples);
  for (std::size_t i = 0; i < samples; ++i) {
    x[i] = lo + (hi - lo) * static_cast<double>(i) /
                    static_cast<double>(samples - 1);
  }
  fn(x.data(), out.data(), samples);
  std::uint64_t worst = 0;
  for (std::size_t i = 0; i < samples; ++i) {
    worst = std::max(worst, ulp_distance(out[i], std::exp(x[i])));
  }
  return worst;
}

TEST(SimdVmath, ExpMeetsDocumentedUlpBounds) {
  for (Width w : simd::supported_widths()) {
    simd::ExpFn fn = simd::exp_fn(w);
    // RC-decay domain: exponents in [-1, 0] (dt up to a full time
    // constant).  Documented bound: 2 ULP.
    EXPECT_LE(max_exp_ulp(fn, -1.0, 0.0, 20001), 2u) << simd::width_name(w);
    // General negative domain down to e^-40 ~ 4e-18.  Documented: 4 ULP.
    EXPECT_LE(max_exp_ulp(fn, -40.0, 0.0, 20001), 4u) << simd::width_name(w);
  }
}

TEST(SimdVmath, ExpIsExactAtZero) {
  for (Width w : simd::supported_widths()) {
    const double x = 0.0;
    double out = -1.0;
    simd::exp_fn(w)(&x, &out, 1);
    EXPECT_EQ(out, 1.0) << simd::width_name(w);
  }
}

TEST(SimdVmath, PowMeetsDocumentedUlpBounds) {
  // The heat-sink power law domain: v in [1, 2^15] rpm (the kernel clamps
  // at 1; Table I fans top out near 9000), y = -r_exp in [-4, -0.05].
  constexpr std::size_t kVs = 257;
  constexpr std::size_t kYs = 65;
  std::vector<double> v(kVs * kYs), y(kVs * kYs), out(kVs * kYs);
  for (std::size_t i = 0; i < kVs; ++i) {
    // Log-spaced so every binade of the domain is sampled.
    const double vi =
        std::exp2(15.0 * static_cast<double>(i) / static_cast<double>(kVs - 1));
    for (std::size_t j = 0; j < kYs; ++j) {
      const double yj = -4.0 + 3.95 * static_cast<double>(j) /
                                   static_cast<double>(kYs - 1);
      v[i * kYs + j] = vi;
      y[i * kYs + j] = yj;
    }
  }
  for (Width w : simd::supported_widths()) {
    simd::pow_fn(w)(v.data(), y.data(), out.data(), out.size());
    std::uint64_t worst = 0;
    for (std::size_t k = 0; k < out.size(); ++k) {
      worst = std::max(worst, ulp_distance(out[k], std::pow(v[k], y[k])));
    }
    EXPECT_LE(worst, 64u) << simd::width_name(w);
  }
}

TEST(SimdVmath, PowIsExactAtOne) {
  for (Width w : simd::supported_widths()) {
    const double v[3] = {1.0, 2.0, 4.0};
    const double y[3] = {-0.923, -1.0, -2.0};
    double out[3] = {0.0, 0.0, 0.0};
    simd::pow_fn(w)(v, y, out, 3);
    EXPECT_EQ(out[0], 1.0) << simd::width_name(w);  // 1^y == 1 exactly
    EXPECT_EQ(out[1], 0.5) << simd::width_name(w);  // 2^-1, exact in exp2
    EXPECT_EQ(out[2], 0.0625) << simd::width_name(w);  // 4^-2
  }
}

// ------------------------------------------------- ServerBatch, per width

/// A small fleet exercising the tail path (odd lane count) with per-lane
/// state divergence driven by different commands/loads.
struct BatchFixture {
  std::vector<std::unique_ptr<Rng>> rngs;
  std::vector<std::unique_ptr<Server>> servers;
  ServerBatch batch;

  explicit BatchFixture(std::size_t n) {
    for (std::size_t i = 0; i < n; ++i) {
      rngs.push_back(std::make_unique<Rng>(100 + i));
      servers.push_back(
          std::make_unique<Server>(Server::table1_defaults(*rngs.back())));
      batch.add_server(*servers.back());
    }
  }

  /// Drive `periods` control periods of 20 x 0.05 s substeps with per-lane
  /// square-wave commands and loads (fans slew most of the time).
  void drive(long periods, std::size_t chunk_lanes) {
    const double dt = 0.05;
    const std::size_t n = batch.size();
    batch.prepare_dt(dt);
    for (long p = 0; p < periods; ++p) {
      for (std::size_t i = 0; i < n; ++i) {
        const double cmd =
            (p + static_cast<long>(i)) % 6 < 3 ? 2200.0 + 300.0 * i : 7600.0;
        const double watts = 40.0 + 12.0 * static_cast<double>((p + 2 * i) % 5);
        batch.set_inputs(i, watts, cmd, 25.0 + 0.5 * i);
      }
      for (long s = 0; s < 20; ++s) {
        for (std::size_t lo = 0; lo < n; lo += chunk_lanes) {
          batch.step_range(lo, std::min(n, lo + chunk_lanes), dt);
        }
      }
    }
  }
};

TEST(SimdBatch, SetSimdRejectsUnsupportedWidths) {
  BatchFixture fx(2);
  for (Width w : kAllWidths) {
    if (simd::width_supported(w)) continue;
    EXPECT_THROW(fx.batch.set_simd(w), std::invalid_argument)
        << simd::width_name(w);
  }
  // And nullopt always restores the reference path.
  fx.batch.set_simd(std::nullopt);
  EXPECT_FALSE(fx.batch.simd_width().has_value());
}

TEST(SimdBatch, BitIdenticalAcrossChunkSizesAtFixedWidth) {
  for (Width w : simd::supported_widths()) {
    BatchFixture whole(7);
    whole.batch.set_simd(w);
    whole.drive(40, 7);  // single range per substep
    for (std::size_t chunk : {1u, 2u, 3u, 5u}) {
      BatchFixture split(7);
      split.batch.set_simd(w);
      split.drive(40, chunk);
      for (std::size_t i = 0; i < 7; ++i) {
        ASSERT_EQ(whole.batch.junction_celsius(i),
                  split.batch.junction_celsius(i))
            << simd::width_name(w) << " chunk " << chunk << " lane " << i;
        ASSERT_EQ(whole.batch.heat_sink_celsius(i),
                  split.batch.heat_sink_celsius(i));
        ASSERT_EQ(whole.batch.fan_rpm(i), split.batch.fan_rpm(i));
        ASSERT_EQ(whole.batch.fan_watts(i), split.batch.fan_watts(i));
      }
    }
  }
}

TEST(SimdBatch, TracksReferencePathWithinUlpBounds) {
  // The slew pass is the same mul/add/select sequence in both paths, so
  // fan speeds must match bit-for-bit; the thermal nodes differ only by
  // fma/polynomial rounding, contracted by the stable RC dynamics.
  for (Width w : simd::supported_widths()) {
    BatchFixture ref(5);
    BatchFixture vec(5);
    vec.batch.set_simd(w);
    ref.drive(60, 5);
    vec.drive(60, 5);
    for (std::size_t i = 0; i < 5; ++i) {
      EXPECT_EQ(ref.batch.fan_rpm(i), vec.batch.fan_rpm(i))
          << simd::width_name(w) << " lane " << i;
      EXPECT_TRUE(within_ulp_or_abs(ref.batch.junction_celsius(i),
                                    vec.batch.junction_celsius(i), 1u << 14,
                                    1e-9))
          << simd::width_name(w) << " lane " << i << ": "
          << ref.batch.junction_celsius(i) << " vs "
          << vec.batch.junction_celsius(i);
      EXPECT_TRUE(within_ulp_or_abs(ref.batch.heat_sink_celsius(i),
                                    vec.batch.heat_sink_celsius(i), 1u << 14,
                                    1e-9))
          << simd::width_name(w) << " lane " << i;
      EXPECT_TRUE(within_ulp_or_abs(ref.batch.fan_watts(i),
                                    vec.batch.fan_watts(i), 1u << 14, 1e-9))
          << simd::width_name(w) << " lane " << i;
    }
  }
}

/// Lanes per vector block, mirrored from the kernel TUs (dispatch
/// intentionally does not export it).
std::size_t block_lanes(Width w) {
  switch (w) {
    case Width::kScalar: return 4;  // portable array kernel is 4 wide
    case Width::kSse2: return 2;
    case Width::kAvx2: return 4;
    case Width::kNeon: return 2;
  }
  return 1;
}

TEST(SimdBatch, MemoTelemetryIsExact) {
  for (Width w : simd::supported_widths()) {
    BatchFixture fx(5);
    fx.batch.set_simd(w);
    fx.batch.set_memo_telemetry(true);
    const double dt = 0.05;
    fx.batch.prepare_dt(dt);
    for (std::size_t i = 0; i < 5; ++i) {
      fx.batch.set_inputs(i, 50.0, 2000.0, 25.0);  // command == initial rpm
    }
    // First substep: every lane moves (prepare_dt invalidated the memos).
    // table1_defaults gives every lane identical coefficients, so the
    // rolling share pays for exactly ONE vector recompute (the first
    // block) and shares the rest.
    const std::uint64_t first_block = std::min<std::uint64_t>(
        static_cast<std::uint64_t>(block_lanes(w)), 5u);
    fx.batch.step_range(0, 5, dt);
    EXPECT_EQ(fx.batch.memo_misses(), first_block) << simd::width_name(w);
    EXPECT_EQ(fx.batch.memo_shared_hits(), 5u - first_block)
        << simd::width_name(w);
    EXPECT_EQ(fx.batch.memo_hits(), 0u) << simd::width_name(w);
    // Settled from here on: all hits, and hits + shared + misses == lanes
    // stepped.
    fx.batch.step_range(0, 5, dt);
    fx.batch.step_range(0, 5, dt);
    EXPECT_EQ(fx.batch.memo_misses(), first_block) << simd::width_name(w);
    EXPECT_EQ(fx.batch.memo_shared_hits(), 5u - first_block)
        << simd::width_name(w);
    EXPECT_EQ(fx.batch.memo_hits(), 10u) << simd::width_name(w);
    EXPECT_EQ(fx.batch.memo_hits() + fx.batch.memo_shared_hits() +
                  fx.batch.memo_misses(),
              15u)
        << simd::width_name(w);
  }
}

// ------------------------------------- full drivers: rack and room runs

CoupledRackParams rack_params(SimdMode mode) {
  CoupledRackParams p = default_coupled_scenario(1234, 240.0);
  p.rack.num_servers = 6;
  p.coordinator = "shared-fan-zone";
  p.simd = mode;
  return p;
}

/// EXPECT_EQ on every integer observable; doubles within tight ULP-or-abs
/// tolerances.  Used for SIMD-vs-reference comparisons, where fma and
/// polynomial rounding preclude bit equality but the sensor quantization
/// (0.25 C) keeps every control decision — and thus every discrete
/// observable — identical.
void expect_equivalent(const CoupledRackResult& a, const CoupledRackResult& b) {
  constexpr std::uint64_t kUlp = 1u << 20;
  constexpr double kAbs = 1e-5;
  ASSERT_EQ(a.slots.size(), b.slots.size());
  EXPECT_EQ(a.coordination_rounds, b.coordination_rounds);
  EXPECT_EQ(a.deadline_violation_percent, b.deadline_violation_percent);
  EXPECT_EQ(a.pooled_deadline_violations(), b.pooled_deadline_violations());
  EXPECT_TRUE(within_ulp_or_abs(a.fan_energy_joules, b.fan_energy_joules,
                                kUlp, kAbs))
      << a.fan_energy_joules << " vs " << b.fan_energy_joules;
  EXPECT_TRUE(within_ulp_or_abs(a.cpu_energy_joules, b.cpu_energy_joules,
                                kUlp, kAbs))
      << a.cpu_energy_joules << " vs " << b.cpu_energy_joules;
  EXPECT_TRUE(within_ulp_or_abs(a.max_junction_stats.max(),
                                b.max_junction_stats.max(), kUlp, kAbs));
  for (std::size_t i = 0; i < a.slots.size(); ++i) {
    EXPECT_EQ(a.slots[i].deadline_violations, b.slots[i].deadline_violations)
        << i;
    EXPECT_EQ(a.slots[i].deadline_periods, b.slots[i].deadline_periods) << i;
    EXPECT_EQ(a.slots[i].fan_override_rounds, b.slots[i].fan_override_rounds)
        << i;
    EXPECT_TRUE(within_ulp_or_abs(a.slots[i].result.fan_energy_joules,
                                  b.slots[i].result.fan_energy_joules, kUlp,
                                  kAbs))
        << i;
    EXPECT_TRUE(within_ulp_or_abs(a.slots[i].result.max_junction_celsius,
                                  b.slots[i].result.max_junction_celsius,
                                  kUlp, kAbs))
        << i;
  }
}

/// Bitwise identity (same comparator discipline as test_batch.cpp).
void expect_identical(const CoupledRackResult& a, const CoupledRackResult& b) {
  ASSERT_EQ(a.slots.size(), b.slots.size());
  EXPECT_EQ(a.fan_energy_joules, b.fan_energy_joules);
  EXPECT_EQ(a.cpu_energy_joules, b.cpu_energy_joules);
  EXPECT_EQ(a.deadline_violation_percent, b.deadline_violation_percent);
  EXPECT_EQ(a.thermal_violation_percent, b.thermal_violation_percent);
  EXPECT_EQ(a.max_junction_stats.max(), b.max_junction_stats.max());
  EXPECT_EQ(a.mean_junction_stats.mean(), b.mean_junction_stats.mean());
  EXPECT_EQ(a.coordination_rounds, b.coordination_rounds);
  for (std::size_t i = 0; i < a.slots.size(); ++i) {
    EXPECT_EQ(a.slots[i].deadline_violations, b.slots[i].deadline_violations)
        << i;
    EXPECT_EQ(a.slots[i].result.fan_energy_joules,
              b.slots[i].result.fan_energy_joules)
        << i;
    EXPECT_EQ(a.slots[i].result.max_junction_celsius,
              b.slots[i].result.max_junction_celsius)
        << i;
    EXPECT_EQ(a.slots[i].inlet_stats.mean(), b.slots[i].inlet_stats.mean())
        << i;
    EXPECT_EQ(a.slots[i].fan_override_rounds, b.slots[i].fan_override_rounds)
        << i;
  }
}

TEST(SimdRack, EquivalentToReferencePath) {
  const CoupledRackResult ref = CoupledRackEngine(rack_params(SimdMode::kOff), 1).run();
  const CoupledRackResult vec = CoupledRackEngine(rack_params(SimdMode::kOn), 1).run();
  expect_equivalent(ref, vec);
}

TEST(SimdRack, AutoModeMatchesExplicitChoice) {
  // kAuto must behave exactly like kOn on a vector host and exactly like
  // kOff on a scalar-only one — never a third behaviour.
  const SimdMode expected =
      simd::has_vector_isa() ? SimdMode::kOn : SimdMode::kOff;
  const CoupledRackResult a = CoupledRackEngine(rack_params(SimdMode::kAuto), 2).run();
  const CoupledRackResult b = CoupledRackEngine(rack_params(expected), 2).run();
  expect_identical(a, b);
}

TEST(SimdRack, BitIdenticalAcrossChunksAndThreadsAtFixedWidth) {
  CoupledRackParams ref_params = rack_params(SimdMode::kOn);
  ref_params.chunk = 0;
  const CoupledRackResult ref = CoupledRackEngine(ref_params, 1).run();
  for (std::size_t chunk : {1u, 3u, 7u, 0u, 6u}) {
    for (std::size_t threads : {1u, 2u, 8u}) {
      CoupledRackParams p = rack_params(SimdMode::kOn);
      p.chunk = chunk;
      const CoupledRackResult run = CoupledRackEngine(p, threads).run();
      expect_identical(ref, run);
    }
  }
}

TEST(SimdRack, ExecutorOffIsAlsoBitIdentical) {
  CoupledRackParams a = rack_params(SimdMode::kOn);
  const CoupledRackResult with_executor = CoupledRackEngine(a, 2).run();
  CoupledRackParams b = rack_params(SimdMode::kOn);
  b.executor = false;
  const CoupledRackResult with_pool = CoupledRackEngine(b, 2).run();
  expect_identical(with_executor, with_pool);
}

RoomParams room_params(SimdMode mode) {
  RoomParams p = default_room_scenario(2, 77, 240.0);
  for (auto& rack : p.racks) rack.simd = mode;
  return p;
}

TEST(SimdRoom, EquivalentToReferencePathAndThreadStable) {
  const RoomResult ref = RoomEngine(room_params(SimdMode::kOff), 1).run();
  const RoomResult vec1 = RoomEngine(room_params(SimdMode::kOn), 1).run();
  // Integer observables survive the kernel swap...
  ASSERT_EQ(ref.racks.size(), vec1.racks.size());
  EXPECT_EQ(ref.migration_events, vec1.migration_events);
  EXPECT_EQ(ref.deadline_violation_percent, vec1.deadline_violation_percent);
  for (std::size_t i = 0; i < ref.racks.size(); ++i) {
    expect_equivalent(ref.racks[i].result, vec1.racks[i].result);
  }
  // ...and the SIMD run itself is bit-stable across thread counts.
  for (std::size_t threads : {2u, 8u}) {
    const RoomResult vecn = RoomEngine(room_params(SimdMode::kOn), threads).run();
    ASSERT_EQ(vec1.racks.size(), vecn.racks.size());
    EXPECT_EQ(vec1.migration_events, vecn.migration_events);
    EXPECT_EQ(vec1.fan_energy_joules, vecn.fan_energy_joules);
    EXPECT_EQ(vec1.cpu_energy_joules, vecn.cpu_energy_joules);
    for (std::size_t i = 0; i < vec1.racks.size(); ++i) {
      expect_identical(vec1.racks[i].result, vecn.racks[i].result);
    }
  }
}

}  // namespace
}  // namespace fsc
