// Unit tests for the gain schedule (Eqns. 8-9) and the adaptive PID fan
// controller's region handling.
#include <gtest/gtest.h>

#include <stdexcept>

#include "core/adaptive_pid_fan.hpp"
#include "core/gain_schedule.hpp"

namespace fsc {
namespace {

GainSchedule two_region_schedule() {
  return GainSchedule({GainRegion{2000.0, PidGains{100.0, 2.0, 800.0}},
                       GainRegion{6000.0, PidGains{500.0, 10.0, 4000.0}}});
}

TEST(GainSchedule, ExactRegionSpeedsReturnRegionGains) {
  const auto s = two_region_schedule();
  const auto lo = s.lookup(2000.0);
  EXPECT_DOUBLE_EQ(lo.gains.kp, 100.0);
  EXPECT_DOUBLE_EQ(lo.alpha, 0.0);
  const auto hi = s.lookup(6000.0);
  EXPECT_DOUBLE_EQ(hi.gains.kp, 500.0);
  EXPECT_DOUBLE_EQ(hi.alpha, 1.0);
}

TEST(GainSchedule, MidpointInterpolation) {
  const auto s = two_region_schedule();
  const auto mid = s.lookup(4000.0);  // alpha = 0.5
  EXPECT_DOUBLE_EQ(mid.alpha, 0.5);
  EXPECT_DOUBLE_EQ(mid.gains.kp, 300.0);
  EXPECT_DOUBLE_EQ(mid.gains.ki, 6.0);
  EXPECT_DOUBLE_EQ(mid.gains.kd, 2400.0);
}

TEST(GainSchedule, Equation9Alpha) {
  const auto s = two_region_schedule();
  const auto g = s.lookup(3000.0);
  EXPECT_DOUBLE_EQ(g.alpha, 0.25);  // (3000-2000)/(6000-2000)
  EXPECT_DOUBLE_EQ(g.gains.kp, 200.0);
}

TEST(GainSchedule, BelowFirstRegionClamps) {
  const auto s = two_region_schedule();
  const auto g = s.lookup(800.0);
  EXPECT_DOUBLE_EQ(g.gains.kp, 100.0);
  EXPECT_EQ(g.region_index, 0u);
  EXPECT_DOUBLE_EQ(g.alpha, 0.0);
}

TEST(GainSchedule, AboveLastRegionClamps) {
  const auto s = two_region_schedule();
  const auto g = s.lookup(8500.0);
  EXPECT_DOUBLE_EQ(g.gains.kp, 500.0);
  EXPECT_DOUBLE_EQ(g.alpha, 1.0);
}

TEST(GainSchedule, SingleRegionAlwaysSameGains) {
  const GainSchedule s({GainRegion{3000.0, PidGains{42.0, 1.0, 7.0}}});
  for (double v : {500.0, 3000.0, 8500.0}) {
    EXPECT_DOUBLE_EQ(s.lookup(v).gains.kp, 42.0) << v;
  }
}

TEST(GainSchedule, SortsRegionsOnConstruction) {
  const GainSchedule s({GainRegion{6000.0, PidGains{500.0, 0.0, 0.0}},
                        GainRegion{2000.0, PidGains{100.0, 0.0, 0.0}}});
  EXPECT_DOUBLE_EQ(s.region(0).ref_speed_rpm, 2000.0);
  EXPECT_DOUBLE_EQ(s.region(1).ref_speed_rpm, 6000.0);
}

TEST(GainSchedule, ThreeRegionsBracketCorrectly) {
  const GainSchedule s({GainRegion{1000.0, PidGains{10.0, 0.0, 0.0}},
                        GainRegion{4000.0, PidGains{40.0, 0.0, 0.0}},
                        GainRegion{8000.0, PidGains{80.0, 0.0, 0.0}}});
  EXPECT_EQ(s.lookup(2000.0).region_index, 0u);
  EXPECT_EQ(s.lookup(5000.0).region_index, 1u);
  EXPECT_DOUBLE_EQ(s.lookup(2500.0).gains.kp, 25.0);
  EXPECT_DOUBLE_EQ(s.lookup(6000.0).gains.kp, 60.0);
}

TEST(GainSchedule, RejectsEmptyAndDuplicates) {
  EXPECT_THROW(GainSchedule({}), std::invalid_argument);
  EXPECT_THROW(GainSchedule({GainRegion{2000.0, PidGains{}},
                             GainRegion{2000.0, PidGains{}}}),
               std::invalid_argument);
}

// ----------------------------------------------------- AdaptivePidFanController

FanControlInput input_at(double temp, double speed, double ref = 75.0) {
  FanControlInput in;
  in.measured_temp = temp;
  in.reference_temp = ref;
  in.current_speed = speed;
  in.quantization_step = 1.0;
  return in;
}

TEST(AdaptiveFan, RespondsToHotMeasurement) {
  AdaptivePidFanController c(two_region_schedule(), AdaptivePidFanParams{}, 2000.0);
  // +5 degC error: speed must rise above the offset.
  const double out = c.decide(input_at(80.0, 2000.0));
  EXPECT_GT(out, 2000.0);
}

TEST(AdaptiveFan, FreezeGuardHoldsSpeed) {
  AdaptivePidFanParams p;
  p.guard_mode = QuantizationGuardMode::kFreezeOutput;
  AdaptivePidFanController c(two_region_schedule(), p, 2000.0);
  // |T_ref - T_meas| = 0.5 < 1 degC: Eqn. 10 holds the speed literally.
  const double out = c.decide(input_at(75.5, 3456.0));
  EXPECT_DOUBLE_EQ(out, 3456.0);
  EXPECT_TRUE(c.last_decision_held());
}

TEST(AdaptiveFan, ZeroErrorGuardSettlesOutput) {
  // Default mode: within the quantization cell the PID runs on a zeroed
  // error, so a settled controller emits a constant command.
  AdaptivePidFanController c(two_region_schedule(), AdaptivePidFanParams{}, 2000.0);
  const double out1 = c.decide(input_at(75.5, 2000.0));
  EXPECT_TRUE(c.last_decision_held());
  const double out2 = c.decide(input_at(74.5, out1));
  EXPECT_TRUE(c.last_decision_held());
  // No error ever acted on: output stays at the linearisation offset.
  EXPECT_DOUBLE_EQ(out1, 2000.0);
  EXPECT_DOUBLE_EQ(out2, 2000.0);
}

TEST(AdaptiveFan, ZeroErrorGuardRetractsAfterBlip) {
  // A one-period +1 degC reading flip kicks the output, but the following
  // in-cell reading retracts the P and D contributions: only the integral
  // displacement remains.  (The freeze mode would park at the kicked
  // speed; see the quantization-guard ablation.)
  AdaptivePidFanParams params;
  params.min_speed_rpm = 500.0;  // keep the retraction inside the envelope
  AdaptivePidFanController c(two_region_schedule(), params, 2000.0);
  const double kicked = c.decide(input_at(76.0, 2000.0));
  const auto g1 = c.active_gains();
  EXPECT_DOUBLE_EQ(kicked, 2000.0 + g1.kp + g1.ki);  // P + I (D has no history)
  const double retracted = c.decide(input_at(75.0, kicked));
  // The second decision interpolates gains at the kicked speed; with the
  // zeroed error only the integral (one accumulated degree) and the
  // derivative retraction remain.
  const auto g2 = c.active_gains();
  EXPECT_DOUBLE_EQ(retracted, 2000.0 + g2.ki - g2.kd);
}

TEST(AdaptiveFan, GuardBoundaryIsExclusive) {
  AdaptivePidFanController c(two_region_schedule(), AdaptivePidFanParams{}, 2000.0);
  // Exactly one quantization step of error is NOT held (Eqn. 10 is <).
  c.decide(input_at(76.0, 2000.0));
  EXPECT_FALSE(c.last_decision_held());
}

TEST(AdaptiveFan, GuardCanBeDisabled) {
  AdaptivePidFanParams p;
  p.enable_quantization_guard = false;
  AdaptivePidFanController c(two_region_schedule(), p, 2000.0);
  c.decide(input_at(75.5, 2000.0));
  EXPECT_FALSE(c.last_decision_held());
}

TEST(AdaptiveFan, OutputClampedToEnvelope) {
  AdaptivePidFanController c(two_region_schedule(), AdaptivePidFanParams{}, 2000.0);
  const double out = c.decide(input_at(120.0, 2000.0));
  EXPECT_LE(out, 8500.0);
  const double out2 = c.decide(input_at(20.0, 2000.0));
  EXPECT_GE(out2, 500.0);
}

TEST(AdaptiveFan, UsesRegionGainsAtOperatingSpeed) {
  AdaptivePidFanController c(two_region_schedule(), AdaptivePidFanParams{}, 2000.0);
  c.decide(input_at(80.0, 2000.0));
  EXPECT_DOUBLE_EQ(c.active_gains().kp, 100.0);
  // At 6000 rpm the controller must blend to the high-region gains.
  c.decide(input_at(80.0, 6000.0));
  EXPECT_DOUBLE_EQ(c.active_gains().kp, 500.0);
}

TEST(AdaptiveFan, GainScheduleCanBeDisabled) {
  AdaptivePidFanParams p;
  p.enable_gain_schedule = false;
  AdaptivePidFanController c(two_region_schedule(), p, 2000.0);
  c.decide(input_at(80.0, 6000.0));
  // With scheduling off the gains stay at the initial-speed lookup.
  EXPECT_DOUBLE_EQ(c.active_gains().kp, 100.0);
}

TEST(AdaptiveFan, RegionChangeResetsIntegralWhenEnabled) {
  AdaptivePidFanParams p;
  p.reset_on_region_change = true;  // the paper's literal §IV-B behaviour
  AdaptivePidFanController c(two_region_schedule(), p, 2000.0);
  // Build up integral in region 0 with persistent +4 error at low speed.
  double speed = 2000.0;
  for (int i = 0; i < 5; ++i) speed = c.decide(input_at(79.0, speed));
  const std::size_t region_before = c.active_region();
  // Jump the operating point into the upper region.
  const double out_after_jump = c.decide(input_at(79.0, 6000.0));
  EXPECT_NE(c.active_region(), region_before);
  // After the reset + re-based offset, the output starts from the current
  // speed plus one fresh PID step; it must not carry region-0's integral.
  EXPECT_NEAR(out_after_jump, 6000.0 + c.active_gains().kp * 4.0 +
                                  c.active_gains().ki * 4.0,
              1e-6);
}

TEST(AdaptiveFan, NoResetByDefaultPreservesIntegral) {
  AdaptivePidFanController c(two_region_schedule(), AdaptivePidFanParams{}, 2000.0);
  double speed = 2000.0;
  for (int i = 0; i < 5; ++i) speed = c.decide(input_at(79.0, speed));
  // Jump into the upper region: region index changes but the integral and
  // offset persist (continuous interpolation handles re-linearisation).
  const double out_after_jump = c.decide(input_at(79.0, 6000.0));
  // Carried integral: 5 steps of +4 plus this step's +4 = 24.  Offset is
  // still the initial 2000 rpm; region-1 gains kp=500, ki=10, derivative
  // zero (error unchanged): 2000 + 500*4 + 10*24 = 4240.
  EXPECT_DOUBLE_EQ(out_after_jump, 4240.0);
}

TEST(AdaptiveFan, RegionSwitchHysteresisHoldsNearBoundary) {
  AdaptivePidFanParams p;
  p.region_switch_hysteresis = 0.1;  // +/-400 rpm around the 4000 boundary
  AdaptivePidFanController c(two_region_schedule(), p, 2000.0);
  c.decide(input_at(80.0, 2000.0));
  EXPECT_EQ(c.active_region(), 0u);
  // 4200 rpm is past the midpoint but inside the hysteresis band: hold.
  c.decide(input_at(80.0, 4200.0));
  EXPECT_EQ(c.active_region(), 0u);
  // 4500 rpm is beyond the band: switch.
  c.decide(input_at(80.0, 4500.0));
  EXPECT_EQ(c.active_region(), 1u);
}

TEST(AdaptiveFan, ResetRestoresInitialState) {
  AdaptivePidFanController c(two_region_schedule(), AdaptivePidFanParams{}, 2000.0);
  for (int i = 0; i < 3; ++i) c.decide(input_at(80.0, 3000.0));
  c.reset();
  const double a = c.decide(input_at(80.0, 2000.0));
  AdaptivePidFanController fresh(two_region_schedule(), AdaptivePidFanParams{}, 2000.0);
  const double b = fresh.decide(input_at(80.0, 2000.0));
  EXPECT_DOUBLE_EQ(a, b);
}

TEST(AdaptiveFan, RejectsBadEnvelope) {
  AdaptivePidFanParams p;
  p.min_speed_rpm = 5000.0;
  p.max_speed_rpm = 1000.0;
  EXPECT_THROW(AdaptivePidFanController(two_region_schedule(), p, 2000.0),
               std::invalid_argument);
}

}  // namespace
}  // namespace fsc
