// Unit tests for src/actuator: slew-limited fan dynamics.
#include <gtest/gtest.h>

#include <stdexcept>

#include "actuator/fan_actuator.hpp"

namespace fsc {
namespace {

// Explicit parameters so the tests do not depend on the library defaults
// (which are calibrated to the reproduction scenario, not to these
// arithmetic checks): 500-8500 rpm envelope, 200 rpm/s slew.
FanParams default_params() {
  FanParams p;
  p.min_rpm = 500.0;
  p.max_rpm = 8500.0;
  p.slew_rpm_per_s = 200.0;
  return p;
}

TEST(FanActuator, StartsClampedIntoEnvelope) {
  FanActuator low(default_params(), 100.0);
  EXPECT_DOUBLE_EQ(low.speed(), 500.0);  // clamped to min
  FanActuator high(default_params(), 9999.0);
  EXPECT_DOUBLE_EQ(high.speed(), 8500.0);  // clamped to max
}

TEST(FanActuator, SlewsTowardCommand) {
  FanActuator fan(default_params(), 2000.0);
  fan.command(3000.0);
  fan.step(1.0);  // 200 rpm/s slew
  EXPECT_DOUBLE_EQ(fan.speed(), 2200.0);
  fan.step(1.0);
  EXPECT_DOUBLE_EQ(fan.speed(), 2400.0);
}

TEST(FanActuator, ReachesCommandExactly) {
  FanActuator fan(default_params(), 2000.0);
  fan.command(2100.0);
  fan.step(1.0);  // would move 200 but only 100 needed
  EXPECT_DOUBLE_EQ(fan.speed(), 2100.0);
  EXPECT_TRUE(fan.settled());
}

TEST(FanActuator, SlewsDownToo) {
  FanActuator fan(default_params(), 4000.0);
  fan.command(3000.0);
  fan.step(2.0);
  EXPECT_DOUBLE_EQ(fan.speed(), 3600.0);
}

TEST(FanActuator, CommandClampedToEnvelope) {
  FanActuator fan(default_params(), 2000.0);
  fan.command(99999.0);
  EXPECT_DOUBLE_EQ(fan.commanded(), 8500.0);
  fan.command(0.0);
  EXPECT_DOUBLE_EQ(fan.commanded(), 500.0);
}

TEST(FanActuator, TransitionTimeMatchesSlew) {
  FanActuator fan(default_params(), 2000.0);
  fan.command(6000.0);
  // 4000 rpm at 200 rpm/s = 20 s: the paper's N_fan_trans transient.
  EXPECT_DOUBLE_EQ(fan.transition_time(), 20.0);
}

TEST(FanActuator, SettledAfterTransitionTime) {
  FanActuator fan(default_params(), 2000.0);
  fan.command(6000.0);
  for (int i = 0; i < 200; ++i) fan.step(0.1);
  EXPECT_TRUE(fan.settled());
  EXPECT_DOUBLE_EQ(fan.speed(), 6000.0);
}

TEST(FanActuator, ZeroDtIsNoop) {
  FanActuator fan(default_params(), 2000.0);
  fan.command(5000.0);
  fan.step(0.0);
  EXPECT_DOUBLE_EQ(fan.speed(), 2000.0);
}

TEST(FanActuator, RejectsNegativeDt) {
  FanActuator fan(default_params(), 2000.0);
  EXPECT_THROW(fan.step(-1.0), std::invalid_argument);
}

TEST(FanActuator, RejectsBadParams) {
  FanParams bad;
  bad.min_rpm = -1.0;
  EXPECT_THROW(FanActuator(bad, 1000.0), std::invalid_argument);
  bad = FanParams{};
  bad.max_rpm = bad.min_rpm;
  EXPECT_THROW(FanActuator(bad, 1000.0), std::invalid_argument);
  bad = FanParams{};
  bad.slew_rpm_per_s = 0.0;
  EXPECT_THROW(FanActuator(bad, 1000.0), std::invalid_argument);
}

TEST(FanActuator, RetargetMidTransition) {
  FanActuator fan(default_params(), 2000.0);
  fan.command(6000.0);
  fan.step(5.0);  // at 3000 rpm
  EXPECT_DOUBLE_EQ(fan.speed(), 3000.0);
  fan.command(2500.0);  // reverse
  fan.step(1.0);
  EXPECT_DOUBLE_EQ(fan.speed(), 2800.0);
}

}  // namespace
}  // namespace fsc
