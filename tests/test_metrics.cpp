// Unit tests for src/metrics: deadline tracking, oscillation analysis,
// step-response metrics, comparison report.
#include <gtest/gtest.h>

#include <cmath>
#include <numbers>
#include <stdexcept>
#include <vector>

#include "metrics/deadline.hpp"
#include "metrics/energy_report.hpp"
#include "metrics/oscillation.hpp"
#include "metrics/settling.hpp"

namespace fsc {
namespace {

// ---------------------------------------------------------------- DeadlineTracker

TEST(Deadline, CountsOnlyShortfalls) {
  DeadlineTracker t;
  t.record(0.5, 1.0);  // satisfied
  t.record(0.8, 0.7);  // violated
  t.record(0.7, 0.7);  // exactly met
  EXPECT_EQ(t.periods(), 3u);
  EXPECT_EQ(t.violations(), 1u);
  EXPECT_NEAR(t.violation_percent(), 100.0 / 3.0, 1e-9);
}

TEST(Deadline, LostUtilizationAccumulates) {
  DeadlineTracker t;
  t.record(0.9, 0.7);
  t.record(0.8, 0.7);
  EXPECT_NEAR(t.lost_utilization(), 0.3, 1e-12);
  EXPECT_NEAR(t.mean_degradation(), 0.15, 1e-12);
}

TEST(Deadline, LastDegradationTracksMostRecent) {
  DeadlineTracker t;
  t.record(0.9, 0.7);
  EXPECT_NEAR(t.last_degradation(), 0.2, 1e-12);
  t.record(0.5, 0.7);
  EXPECT_DOUBLE_EQ(t.last_degradation(), 0.0);
}

TEST(Deadline, EpsilonSuppressesFloatNoise) {
  DeadlineTracker t(0.01);
  t.record(0.705, 0.70);  // within epsilon
  EXPECT_EQ(t.violations(), 0u);
  t.record(0.72, 0.70);
  EXPECT_EQ(t.violations(), 1u);
}

TEST(Deadline, ClampsInputs) {
  DeadlineTracker t;
  t.record(1.5, 2.0);  // both clamp to 1.0 -> no violation
  EXPECT_EQ(t.violations(), 0u);
}

TEST(Deadline, EmptyTrackerSafe) {
  DeadlineTracker t;
  EXPECT_DOUBLE_EQ(t.violation_fraction(), 0.0);
  EXPECT_DOUBLE_EQ(t.mean_degradation(), 0.0);
}

TEST(Deadline, ResetClears) {
  DeadlineTracker t;
  t.record(0.9, 0.5);
  t.reset();
  EXPECT_EQ(t.periods(), 0u);
  EXPECT_EQ(t.violations(), 0u);
  EXPECT_DOUBLE_EQ(t.last_degradation(), 0.0);
}

TEST(Deadline, RejectsNegativeEpsilon) {
  EXPECT_THROW(DeadlineTracker(-0.1), std::invalid_argument);
}

// ---------------------------------------------------------------- find_extrema

std::vector<double> sine_series(double amplitude, double period, int n,
                                double decay_per_sample = 0.0) {
  std::vector<double> s;
  s.reserve(static_cast<std::size_t>(n));
  double amp = amplitude;
  for (int i = 0; i < n; ++i) {
    s.push_back(amp * std::sin(2.0 * std::numbers::pi * i / period));
    amp *= (1.0 - decay_per_sample);
  }
  return s;
}

TEST(Extrema, FindsAlternatingPeaksAndTroughs) {
  const auto s = sine_series(10.0, 20.0, 100);
  const auto ex = find_extrema(s, 1.0);
  ASSERT_GE(ex.size(), 8u);
  for (std::size_t i = 1; i < ex.size(); ++i) {
    EXPECT_NE(ex[i].is_peak, ex[i - 1].is_peak) << "extrema must alternate";
  }
}

TEST(Extrema, HysteresisRejectsSmallRipple) {
  const auto s = sine_series(0.4, 20.0, 100);  // swing 0.8 < hysteresis 1.0
  const auto ex = find_extrema(s, 1.0);
  EXPECT_TRUE(ex.empty());
}

TEST(Extrema, EmptyAndTinySeries) {
  EXPECT_TRUE(find_extrema({}, 1.0).empty());
  EXPECT_TRUE(find_extrema({1.0}, 1.0).empty());
}

TEST(Extrema, MonotoneSeriesHasNoInteriorExtrema) {
  std::vector<double> s;
  for (int i = 0; i < 50; ++i) s.push_back(static_cast<double>(i));
  EXPECT_TRUE(find_extrema(s, 1.0).empty());
}

// ---------------------------------------------------------------- analyse_oscillation

TEST(Oscillation, SustainedSineIsSustained) {
  const auto s = sine_series(5.0, 20.0, 200);
  OscillationParams p;
  const auto r = analyse_oscillation(s, p);
  EXPECT_EQ(r.verdict, OscillationVerdict::kSustained);
  EXPECT_NEAR(r.mean_amplitude, 10.0, 0.5);  // peak-to-trough
  EXPECT_NEAR(r.period_samples, 20.0, 1.0);
  EXPECT_TRUE(is_oscillatory(r));
}

TEST(Oscillation, DecayingSineConverges) {
  const auto s = sine_series(5.0, 20.0, 300, 0.02);
  OscillationParams p;
  const auto r = analyse_oscillation(s, p);
  EXPECT_EQ(r.verdict, OscillationVerdict::kConverged);
  EXPECT_FALSE(is_oscillatory(r));
}

TEST(Oscillation, GrowingSineIsGrowing) {
  const auto s = sine_series(1.5, 20.0, 300, -0.02);  // negative decay = growth
  OscillationParams p;
  const auto r = analyse_oscillation(s, p);
  EXPECT_EQ(r.verdict, OscillationVerdict::kGrowing);
  EXPECT_TRUE(is_oscillatory(r));
}

TEST(Oscillation, FlatSeriesConverges) {
  const std::vector<double> s(100, 3.0);
  OscillationParams p;
  const auto r = analyse_oscillation(s, p);
  EXPECT_EQ(r.verdict, OscillationVerdict::kConverged);
  EXPECT_EQ(r.cycles, 0u);
}

TEST(Oscillation, StepResponseWithOneOvershootConverges) {
  // A classic damped second-order response: one overshoot then settle.
  std::vector<double> s;
  for (int i = 0; i < 100; ++i) {
    const double t = 0.1 * i;
    s.push_back(1.0 - std::exp(-t) * std::cos(2.0 * t) * 3.0);
  }
  OscillationParams p;
  p.hysteresis = 0.2;
  const auto r = analyse_oscillation(s, p);
  EXPECT_EQ(r.verdict, OscillationVerdict::kConverged);
}

// ---------------------------------------------------------------- step response

TEST(StepResponse, SettlingTimeOfExponential) {
  std::vector<double> s;
  for (int i = 0; i < 100; ++i) s.push_back(100.0 * (1.0 - std::exp(-0.1 * i)));
  const auto r = analyse_step_response(s, 100.0, 2.0);
  ASSERT_TRUE(r.settling_index.has_value());
  // Enters the 2 % band at 1 - e^{-0.1 i} >= 0.98 -> i >= 39.1.
  EXPECT_NEAR(static_cast<double>(*r.settling_index), 40.0, 2.0);
  EXPECT_DOUBLE_EQ(r.overshoot, 0.0);
}

TEST(StepResponse, DetectsOvershoot) {
  std::vector<double> s{0.0, 50.0, 110.0, 95.0, 101.0, 100.0, 100.0, 100.0,
                        100.0, 100.0};
  const auto r = analyse_step_response(s, 100.0, 2.0);
  EXPECT_DOUBLE_EQ(r.overshoot, 10.0);
  ASSERT_TRUE(r.rise_index.has_value());
  EXPECT_EQ(*r.rise_index, 2u);
}

TEST(StepResponse, NeverSettlesReportsNullopt) {
  std::vector<double> s;
  for (int i = 0; i < 50; ++i) s.push_back(i % 2 == 0 ? 90.0 : 110.0);
  const auto r = analyse_step_response(s, 100.0, 2.0);
  EXPECT_FALSE(r.settling_index.has_value());
  EXPECT_TRUE(std::isinf(settling_time_seconds(r, 1.0)));
}

TEST(StepResponse, DownwardStepWorks) {
  std::vector<double> s;
  for (int i = 0; i < 100; ++i) s.push_back(100.0 * std::exp(-0.1 * i));
  const auto r = analyse_step_response(s, 0.0, 2.0);
  ASSERT_TRUE(r.settling_index.has_value());
  EXPECT_GT(*r.settling_index, 30u);
}

TEST(StepResponse, SettlingSecondsUsesSamplePeriod) {
  std::vector<double> s{10.0, 0.5, 0.2, 0.1, 0.0};
  const auto r = analyse_step_response(s, 0.0, 1.0);
  ASSERT_TRUE(r.settling_index.has_value());
  EXPECT_DOUBLE_EQ(settling_time_seconds(r, 30.0),
                   30.0 * static_cast<double>(*r.settling_index));
}

TEST(StepResponse, RejectsBadArguments) {
  EXPECT_THROW(analyse_step_response({}, 0.0, 1.0), std::invalid_argument);
  EXPECT_THROW(analyse_step_response({1.0}, 0.0, 0.0), std::invalid_argument);
}

TEST(StepResponse, AlwaysInBandSettlesAtZero) {
  const std::vector<double> s{100.1, 99.9, 100.0};
  const auto r = analyse_step_response(s, 100.0, 1.0);
  ASSERT_TRUE(r.settling_index.has_value());
  EXPECT_EQ(*r.settling_index, 0u);
}

// ---------------------------------------------------------------- ComparisonReport

SolutionResult make_row(const std::string& name, double viol, double fan_j) {
  SolutionResult r;
  r.name = name;
  r.deadline_violation_percent = viol;
  r.fan_energy_joules = fan_j;
  r.total_energy_joules = fan_j + 1000.0;
  return r;
}

TEST(Report, NormalisesAgainstFirstRowByDefault) {
  ComparisonReport rep;
  rep.add(make_row("baseline", 26.0, 1000.0));
  rep.add(make_row("ecoord", 44.0, 703.0));
  EXPECT_DOUBLE_EQ(rep.normalized_fan_energy(0), 1.0);
  EXPECT_DOUBLE_EQ(rep.normalized_fan_energy(1), 0.703);
}

TEST(Report, SetBaselineByName) {
  ComparisonReport rep;
  rep.add(make_row("a", 1.0, 500.0));
  rep.add(make_row("b", 2.0, 1000.0));
  rep.set_baseline("b");
  EXPECT_DOUBLE_EQ(rep.normalized_fan_energy(0), 0.5);
}

TEST(Report, UnknownBaselineThrows) {
  ComparisonReport rep;
  rep.add(make_row("a", 1.0, 1.0));
  EXPECT_THROW(rep.set_baseline("zzz"), std::out_of_range);
}

TEST(Report, TableContainsAllRows) {
  ComparisonReport rep;
  rep.add(make_row("alpha", 1.0, 10.0));
  rep.add(make_row("beta", 2.0, 20.0));
  const auto text = rep.to_table();
  EXPECT_NE(text.find("alpha"), std::string::npos);
  EXPECT_NE(text.find("beta"), std::string::npos);
}

TEST(Report, CsvHasHeaderAndRows) {
  ComparisonReport rep;
  rep.add(make_row("alpha", 1.0, 10.0));
  const auto csv = rep.to_csv();
  EXPECT_NE(csv.find("solution,"), std::string::npos);
  EXPECT_NE(csv.find("alpha"), std::string::npos);
}

TEST(Report, ZeroBaselineEnergyThrows) {
  ComparisonReport rep;
  rep.add(make_row("zero", 1.0, 0.0));
  EXPECT_THROW(rep.normalized_fan_energy(0), std::logic_error);
}

TEST(Report, BadRowIndexThrows) {
  ComparisonReport rep;
  rep.add(make_row("a", 1.0, 1.0));
  EXPECT_THROW(rep.normalized_fan_energy(5), std::out_of_range);
}

}  // namespace
}  // namespace fsc
