// Unit tests for src/util: ring buffer, statistics, CSV, config, units.
#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>

#include "util/config.hpp"
#include "util/csv.hpp"
#include "util/ring_buffer.hpp"
#include "util/rng.hpp"
#include "util/statistics.hpp"
#include "util/units.hpp"

namespace fsc {
namespace {

// ---------------------------------------------------------------- units

TEST(Units, ClampBounds) {
  EXPECT_DOUBLE_EQ(clamp(5.0, 0.0, 10.0), 5.0);
  EXPECT_DOUBLE_EQ(clamp(-1.0, 0.0, 10.0), 0.0);
  EXPECT_DOUBLE_EQ(clamp(11.0, 0.0, 10.0), 10.0);
  EXPECT_DOUBLE_EQ(clamp(0.0, 0.0, 10.0), 0.0);
  EXPECT_DOUBLE_EQ(clamp(10.0, 0.0, 10.0), 10.0);
}

TEST(Units, ClampUtilization) {
  EXPECT_DOUBLE_EQ(clamp_utilization(0.5), 0.5);
  EXPECT_DOUBLE_EQ(clamp_utilization(-0.2), 0.0);
  EXPECT_DOUBLE_EQ(clamp_utilization(1.7), 1.0);
}

TEST(Units, LerpEndpointsAndMidpoint) {
  EXPECT_DOUBLE_EQ(lerp(2.0, 10.0, 0.0), 2.0);
  EXPECT_DOUBLE_EQ(lerp(2.0, 10.0, 1.0), 10.0);
  EXPECT_DOUBLE_EQ(lerp(2.0, 10.0, 0.5), 6.0);
}

TEST(Units, LerpExtrapolates) {
  EXPECT_DOUBLE_EQ(lerp(0.0, 10.0, 1.5), 15.0);
  EXPECT_DOUBLE_EQ(lerp(0.0, 10.0, -0.5), -5.0);
}

TEST(Units, ApproxEqual) {
  EXPECT_TRUE(approx_equal(1.0, 1.0 + 1e-12));
  EXPECT_FALSE(approx_equal(1.0, 1.001));
  EXPECT_TRUE(approx_equal(1.0, 1.5, 0.6));
}

TEST(Units, RequireThrows) {
  EXPECT_NO_THROW(require(true, "ok"));
  EXPECT_THROW(require(false, "bad"), std::invalid_argument);
}

TEST(Units, Literals) {
  using namespace literals;
  EXPECT_DOUBLE_EQ(2000_rpm, 2000.0);
  EXPECT_DOUBLE_EQ(75.5_celsius, 75.5);
  EXPECT_DOUBLE_EQ(29.4_watts, 29.4);
  EXPECT_DOUBLE_EQ(30_sec, 30.0);
}

// ---------------------------------------------------------------- RingBuffer

TEST(RingBuffer, RejectsZeroCapacity) {
  EXPECT_THROW(RingBuffer<int>(0), std::invalid_argument);
}

TEST(RingBuffer, PushPopFifoOrder) {
  RingBuffer<int> buf(3);
  buf.push(1);
  buf.push(2);
  buf.push(3);
  EXPECT_EQ(buf.pop(), 1);
  EXPECT_EQ(buf.pop(), 2);
  EXPECT_EQ(buf.pop(), 3);
  EXPECT_TRUE(buf.empty());
}

TEST(RingBuffer, OverwriteEvictsOldest) {
  RingBuffer<int> buf(3);
  for (int i = 1; i <= 5; ++i) buf.push(i);
  EXPECT_TRUE(buf.full());
  EXPECT_EQ(buf.front(), 3);
  EXPECT_EQ(buf.back(), 5);
  EXPECT_EQ(buf.pop(), 3);
  EXPECT_EQ(buf.pop(), 4);
  EXPECT_EQ(buf.pop(), 5);
}

TEST(RingBuffer, AtIndexesFromOldest) {
  RingBuffer<int> buf(4);
  for (int i = 10; i < 14; ++i) buf.push(i);
  buf.push(14);  // evicts 10
  EXPECT_EQ(buf.at(0), 11);
  EXPECT_EQ(buf.at(3), 14);
  EXPECT_THROW(buf.at(4), std::out_of_range);
}

TEST(RingBuffer, EmptyAccessThrows) {
  RingBuffer<double> buf(2);
  EXPECT_THROW(buf.pop(), std::out_of_range);
  EXPECT_THROW(buf.front(), std::out_of_range);
  EXPECT_THROW(buf.back(), std::out_of_range);
}

TEST(RingBuffer, ClearResets) {
  RingBuffer<int> buf(2);
  buf.push(1);
  buf.push(2);
  buf.clear();
  EXPECT_TRUE(buf.empty());
  EXPECT_EQ(buf.capacity(), 2u);
  buf.push(7);
  EXPECT_EQ(buf.front(), 7);
}

TEST(RingBuffer, ManyWraparoundsStayConsistent) {
  // Sliding-window invariant under sustained eviction: after pushing 0..999
  // through a 7-slot buffer, the window is always the last 7 values in
  // order, regardless of where head_ has wrapped to.
  RingBuffer<int> buf(7);
  for (int i = 0; i < 1000; ++i) {
    buf.push(i);
    const int expected_size = std::min(i + 1, 7);
    ASSERT_EQ(buf.size(), static_cast<std::size_t>(expected_size));
    ASSERT_EQ(buf.back(), i);
    ASSERT_EQ(buf.front(), i - expected_size + 1);
    for (int k = 0; k < expected_size; ++k) {
      ASSERT_EQ(buf.at(static_cast<std::size_t>(k)), i - expected_size + 1 + k);
    }
  }
  // Interleaved pop/push keeps FIFO order across the wrap point.
  EXPECT_EQ(buf.pop(), 993);
  buf.push(1000);
  EXPECT_EQ(buf.front(), 994);
  EXPECT_EQ(buf.back(), 1000);
}

TEST(RingBuffer, SizeTracksPushesUpToCapacity) {
  RingBuffer<int> buf(3);
  EXPECT_EQ(buf.size(), 0u);
  buf.push(1);
  EXPECT_EQ(buf.size(), 1u);
  buf.push(2);
  buf.push(3);
  buf.push(4);
  EXPECT_EQ(buf.size(), 3u);
}

// ---------------------------------------------------------------- RunningStats

TEST(RunningStats, EmptyDefaults) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(RunningStats, KnownSequence) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 4.0);  // classic example: sigma^2 = 4
  EXPECT_DOUBLE_EQ(s.stddev(), 2.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStats, SampleVarianceUsesNMinusOne) {
  RunningStats s;
  s.add(1.0);
  s.add(3.0);
  EXPECT_DOUBLE_EQ(s.variance(), 1.0);
  EXPECT_DOUBLE_EQ(s.sample_variance(), 2.0);
}

TEST(RunningStats, ResetClearsEverything) {
  RunningStats s;
  s.add(10.0);
  s.reset();
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.sum(), 0.0);
}

TEST(RunningStats, SingleSampleVarianceZero) {
  RunningStats s;
  s.add(42.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.sample_variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.mean(), 42.0);
}

// ---------------------------------------------------------------- WindowedStats

TEST(WindowedStats, RejectsZeroWindow) {
  EXPECT_THROW(WindowedStats(0), std::invalid_argument);
}

TEST(WindowedStats, MeanOverWindowOnly) {
  WindowedStats w(3);
  w.add(1.0);
  w.add(2.0);
  w.add(3.0);
  EXPECT_DOUBLE_EQ(w.mean(), 2.0);
  w.add(10.0);  // evicts 1.0
  EXPECT_DOUBLE_EQ(w.mean(), 5.0);
  EXPECT_EQ(w.count(), 3u);
}

TEST(WindowedStats, VarianceMatchesDirectComputation) {
  WindowedStats w(4);
  for (double x : {1.0, 2.0, 3.0, 4.0}) w.add(x);
  // mean 2.5, squared deviations 2.25+0.25+0.25+2.25 = 5 -> var 1.25
  EXPECT_NEAR(w.variance(), 1.25, 1e-12);
}

TEST(WindowedStats, MinMaxOverWindow) {
  WindowedStats w(2);
  w.add(5.0);
  w.add(1.0);
  w.add(3.0);  // window now {1, 3}
  EXPECT_DOUBLE_EQ(w.min(), 1.0);
  EXPECT_DOUBLE_EQ(w.max(), 3.0);
}

TEST(WindowedStats, SnapshotOldestFirst) {
  WindowedStats w(3);
  w.add(1.0);
  w.add(2.0);
  w.add(3.0);
  w.add(4.0);
  const auto snap = w.snapshot();
  ASSERT_EQ(snap.size(), 3u);
  EXPECT_DOUBLE_EQ(snap[0], 2.0);
  EXPECT_DOUBLE_EQ(snap[2], 4.0);
}

TEST(WindowedStats, ClearEmptiesWindow) {
  WindowedStats w(3);
  w.add(1.0);
  w.clear();
  EXPECT_EQ(w.count(), 0u);
  EXPECT_DOUBLE_EQ(w.mean(), 0.0);
}

// ---------------------------------------------------------------- Rng

TEST(Rng, DeterministicForFixedSeed) {
  Rng a(7);
  Rng b(7);
  for (int i = 0; i < 10; ++i) {
    EXPECT_DOUBLE_EQ(a.uniform(0.0, 1.0), b.uniform(0.0, 1.0));
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  bool any_diff = false;
  for (int i = 0; i < 10; ++i) {
    if (a.uniform(0.0, 1.0) != b.uniform(0.0, 1.0)) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

TEST(Rng, GaussianMomentsRoughlyCorrect) {
  Rng rng(123);
  RunningStats s;
  for (int i = 0; i < 20000; ++i) s.add(rng.gaussian(5.0, 2.0));
  EXPECT_NEAR(s.mean(), 5.0, 0.1);
  EXPECT_NEAR(s.stddev(), 2.0, 0.1);
}

TEST(Rng, UniformIntInRange) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform_int(3, 7);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 7);
  }
}

TEST(Rng, ExponentialMeanMatchesRate) {
  Rng rng(55);
  RunningStats s;
  for (int i = 0; i < 20000; ++i) s.add(rng.exponential(0.5));
  EXPECT_NEAR(s.mean(), 2.0, 0.1);
}

// ---------------------------------------------------------------- CSV

TEST(Csv, WriterProducesHeaderAndRows) {
  std::ostringstream out;
  CsvWriter w(out);
  w.header({"a", "b"});
  w.row({1.0, 2.0});
  w.row({3.5, -4.25});
  EXPECT_EQ(out.str(), "a,b\n1,2\n3.5,-4.25\n");
  EXPECT_EQ(w.rows_written(), 2u);
}

TEST(Csv, WriterRejectsDoubleHeader) {
  std::ostringstream out;
  CsvWriter w(out);
  w.header({"a"});
  EXPECT_THROW(w.header({"b"}), std::logic_error);
}

TEST(Csv, WriterRejectsWidthMismatch) {
  std::ostringstream out;
  CsvWriter w(out);
  w.header({"a", "b"});
  EXPECT_THROW(w.row({1.0}), std::invalid_argument);
}

TEST(Csv, ParseRoundTrip) {
  const auto table = parse_csv("x,y\n1,2\n3,4\n");
  ASSERT_EQ(table.columns.size(), 2u);
  ASSERT_EQ(table.rows.size(), 2u);
  EXPECT_EQ(table.column("x"), (std::vector<double>{1.0, 3.0}));
  EXPECT_EQ(table.column("y"), (std::vector<double>{2.0, 4.0}));
}

TEST(Csv, ParseRejectsRaggedRows) {
  EXPECT_THROW(parse_csv("a,b\n1\n"), std::runtime_error);
}

TEST(Csv, ParseRejectsNonNumeric) {
  EXPECT_THROW(parse_csv("a\nhello\n"), std::runtime_error);
}

TEST(Csv, ParseSkipsBlankLinesAndCr) {
  const auto table = parse_csv("a\r\n\r\n1\r\n");
  ASSERT_EQ(table.rows.size(), 1u);
  EXPECT_DOUBLE_EQ(table.rows[0][0], 1.0);
}

TEST(Csv, MissingColumnThrows) {
  const auto table = parse_csv("a\n1\n");
  EXPECT_THROW(table.column_index("zzz"), std::out_of_range);
}

// ---------------------------------------------------------------- Config

TEST(Config, ParseBasics) {
  const auto cfg = Config::parse("alpha = 1.5\nname = hello\nflag = true\n");
  EXPECT_DOUBLE_EQ(cfg.get_double("alpha", 0.0), 1.5);
  EXPECT_EQ(cfg.get_string("name", ""), "hello");
  EXPECT_TRUE(cfg.get_bool("flag", false));
}

TEST(Config, DefaultsWhenMissing) {
  const Config cfg;
  EXPECT_DOUBLE_EQ(cfg.get_double("nope", 3.25), 3.25);
  EXPECT_EQ(cfg.get_int("nope", 42), 42);
  EXPECT_FALSE(cfg.get_bool("nope", false));
}

TEST(Config, CommentsAndWhitespace) {
  const auto cfg = Config::parse("# comment\n  key =  7  # trailing\n");
  EXPECT_EQ(cfg.get_int("key", 0), 7);
  EXPECT_EQ(cfg.size(), 1u);
}

TEST(Config, LaterKeysOverride) {
  const auto cfg = Config::parse("k = 1\nk = 2\n");
  EXPECT_EQ(cfg.get_int("k", 0), 2);
}

TEST(Config, MalformedLineThrows) {
  EXPECT_THROW(Config::parse("no equals sign\n"), std::runtime_error);
}

TEST(Config, BadTypeThrows) {
  const auto cfg = Config::parse("x = hello\n");
  EXPECT_THROW(cfg.get_double("x", 0.0), std::runtime_error);
  EXPECT_THROW(cfg.get_int("x", 0), std::runtime_error);
  EXPECT_THROW(cfg.get_bool("x", false), std::runtime_error);
}

TEST(Config, BoolSpellings) {
  const auto cfg = Config::parse("a=1\nb=yes\nc=on\nd=0\ne=no\nf=off\n");
  EXPECT_TRUE(cfg.get_bool("a", false));
  EXPECT_TRUE(cfg.get_bool("b", false));
  EXPECT_TRUE(cfg.get_bool("c", false));
  EXPECT_FALSE(cfg.get_bool("d", true));
  EXPECT_FALSE(cfg.get_bool("e", true));
  EXPECT_FALSE(cfg.get_bool("f", true));
}

TEST(Config, RoundTripToString) {
  auto cfg = Config::parse("b = 2\na = 1\n");
  const auto text = cfg.to_string();
  const auto cfg2 = Config::parse(text);
  EXPECT_EQ(cfg2.get_int("a", 0), 1);
  EXPECT_EQ(cfg2.get_int("b", 0), 2);
}

}  // namespace
}  // namespace fsc
