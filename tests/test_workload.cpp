// Unit tests for src/workload: trace types, synthetic generators,
// predictors, and trace I/O round-trips.
#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <fstream>
#include <random>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "util/statistics.hpp"
#include "workload/predictor.hpp"
#include "workload/synthetic.hpp"
#include "workload/trace.hpp"
#include "workload/trace_io.hpp"

namespace fsc {
namespace {

// ---------------------------------------------------------------- trace types

TEST(ConstantWorkload, AlwaysSameLevel) {
  const ConstantWorkload w(0.42);
  EXPECT_DOUBLE_EQ(w.demand(0.0), 0.42);
  EXPECT_DOUBLE_EQ(w.demand(1e6), 0.42);
}

TEST(ConstantWorkload, RejectsOutOfRange) {
  EXPECT_THROW(ConstantWorkload(-0.1), std::invalid_argument);
  EXPECT_THROW(ConstantWorkload(1.1), std::invalid_argument);
}

TEST(SquareWave, PaperLevelsAndPhase) {
  const SquareWaveWorkload w(0.1, 0.7, 200.0);
  EXPECT_DOUBLE_EQ(w.demand(0.0), 0.1);
  EXPECT_DOUBLE_EQ(w.demand(99.0), 0.1);
  EXPECT_DOUBLE_EQ(w.demand(100.0), 0.7);
  EXPECT_DOUBLE_EQ(w.demand(199.0), 0.7);
  EXPECT_DOUBLE_EQ(w.demand(200.0), 0.1);  // wraps
}

TEST(SquareWave, NegativeTimeClampsToStart) {
  const SquareWaveWorkload w(0.1, 0.7, 200.0);
  EXPECT_DOUBLE_EQ(w.demand(-5.0), 0.1);
}

TEST(SquareWave, RejectsBadParameters) {
  EXPECT_THROW(SquareWaveWorkload(-0.1, 0.7, 100.0), std::invalid_argument);
  EXPECT_THROW(SquareWaveWorkload(0.1, 1.7, 100.0), std::invalid_argument);
  EXPECT_THROW(SquareWaveWorkload(0.1, 0.7, 0.0), std::invalid_argument);
}

TEST(SampledWorkload, ZeroOrderHold) {
  const SampledWorkload w({0.1, 0.5, 0.9}, 2.0);
  EXPECT_DOUBLE_EQ(w.demand(0.0), 0.1);
  EXPECT_DOUBLE_EQ(w.demand(1.99), 0.1);
  EXPECT_DOUBLE_EQ(w.demand(2.0), 0.5);
  EXPECT_DOUBLE_EQ(w.demand(4.0), 0.9);
  EXPECT_DOUBLE_EQ(w.demand(100.0), 0.9);  // last sample held forever
  EXPECT_DOUBLE_EQ(w.duration(), 6.0);
}

TEST(SampledWorkload, RejectsBadInput) {
  EXPECT_THROW(SampledWorkload({}, 1.0), std::invalid_argument);
  EXPECT_THROW(SampledWorkload({0.5}, 0.0), std::invalid_argument);
  EXPECT_THROW(SampledWorkload({1.5}, 1.0), std::invalid_argument);
}

TEST(LambdaWorkload, ClampsCallableOutput) {
  const LambdaWorkload w([](double t) { return t; });
  EXPECT_DOUBLE_EQ(w.demand(0.5), 0.5);
  EXPECT_DOUBLE_EQ(w.demand(7.0), 1.0);  // clamped
}

// ---------------------------------------------------------------- synthetic

TEST(SquareNoise, MatchesPaperParameters) {
  Rng rng(1);
  SquareNoiseParams p;  // defaults: 0.1/0.7, sigma 0.04
  p.duration_s = 2000.0;
  const auto w = make_square_noise_workload(p, rng);
  // Samples in the low phase should centre on 0.1, high phase on 0.7.
  RunningStats low, high;
  for (double t = 0.0; t < 2000.0; t += 1.0) {
    const double phase = std::fmod(t, 200.0);
    (phase < 100.0 ? low : high).add(w->demand(t));
  }
  EXPECT_NEAR(low.mean(), 0.1, 0.02);
  EXPECT_NEAR(high.mean(), 0.7, 0.02);
  EXPECT_NEAR(low.stddev(), 0.04, 0.015);
  EXPECT_NEAR(high.stddev(), 0.04, 0.015);
}

TEST(SquareNoise, DeterministicPerSeed) {
  SquareNoiseParams p;
  p.duration_s = 100.0;
  Rng a(9), b(9);
  const auto wa = make_square_noise_workload(p, a);
  const auto wb = make_square_noise_workload(p, b);
  for (double t = 0.0; t < 100.0; t += 1.0) {
    EXPECT_DOUBLE_EQ(wa->demand(t), wb->demand(t));
  }
}

TEST(SquareNoise, AllSamplesInRange) {
  Rng rng(2);
  SquareNoiseParams p;
  p.noise_stddev = 0.5;  // huge noise to exercise clamping
  p.duration_s = 500.0;
  const auto w = make_square_noise_workload(p, rng);
  for (double t = 0.0; t < 500.0; t += 1.0) {
    EXPECT_GE(w->demand(t), 0.0);
    EXPECT_LE(w->demand(t), 1.0);
  }
}

TEST(Spiky, SpikesReachConfiguredLevel) {
  Rng rng(3);
  SpikyParams p;
  p.base.duration_s = 3000.0;
  p.spike_rate_per_s = 1.0 / 100.0;  // frequent spikes for the test
  p.spike_level = 1.0;
  const auto w = make_spiky_workload(p, rng);
  int spike_samples = 0;
  for (double t = 0.0; t < 3000.0; t += 1.0) {
    if (w->demand(t) >= 0.99) ++spike_samples;
  }
  // ~30 spikes x 20 s each = ~600 expected spike seconds; allow wide margin.
  EXPECT_GT(spike_samples, 100);
}

TEST(Spiky, ZeroRateMeansNoSpikes) {
  Rng rng(4);
  SpikyParams p;
  p.base.duration_s = 500.0;
  p.base.noise_stddev = 0.0;
  p.spike_rate_per_s = 0.0;
  const auto w = make_spiky_workload(p, rng);
  for (double t = 0.0; t < 500.0; t += 1.0) {
    EXPECT_LE(w->demand(t), 0.7);
  }
}

TEST(Diurnal, TroughAtMidnightPeakAtNoon) {
  Rng rng(5);
  DiurnalParams p;
  p.noise_stddev = 0.0;
  const auto w = make_diurnal_workload(p, rng);
  EXPECT_NEAR(w->demand(0.0), p.base, 1e-6);
  EXPECT_NEAR(w->demand(43200.0), p.peak, 1e-6);
}

TEST(Diurnal, RejectsPeakBelowBase) {
  Rng rng(5);
  DiurnalParams p;
  p.base = 0.9;
  p.peak = 0.1;
  EXPECT_THROW(make_diurnal_workload(p, rng), std::invalid_argument);
}

TEST(StepWorkload, SwitchesAtStepTime) {
  const auto w = make_step_workload(0.1, 0.7, 30.0);
  EXPECT_DOUBLE_EQ(w->demand(29.9), 0.1);
  EXPECT_DOUBLE_EQ(w->demand(30.0), 0.7);
}

// ---------------------------------------------------------------- predictors

TEST(MovingAverage, PredictsWindowMean) {
  MovingAveragePredictor p(3, 0.5);
  EXPECT_DOUBLE_EQ(p.predict(), 0.5);  // initial
  p.observe(0.2);
  EXPECT_DOUBLE_EQ(p.predict(), 0.2);
  p.observe(0.4);
  p.observe(0.6);
  EXPECT_NEAR(p.predict(), 0.4, 1e-12);
  p.observe(0.8);  // evicts 0.2
  EXPECT_NEAR(p.predict(), 0.6, 1e-12);
}

TEST(MovingAverage, FiltersNoise) {
  Rng rng(11);
  MovingAveragePredictor p(16);
  for (int i = 0; i < 200; ++i) p.observe(0.5 + rng.gaussian(0.0, 0.04));
  EXPECT_NEAR(p.predict(), 0.5, 0.03);
}

TEST(MovingAverage, ResetRestoresInitial) {
  MovingAveragePredictor p(4, 0.3);
  p.observe(0.9);
  p.reset();
  EXPECT_DOUBLE_EQ(p.predict(), 0.3);
}

TEST(MovingAverage, RejectsBadParameters) {
  EXPECT_THROW(MovingAveragePredictor(0), std::invalid_argument);
  EXPECT_THROW(MovingAveragePredictor(4, 1.5), std::invalid_argument);
}

TEST(Ewma, ConvergesToConstantInput) {
  EwmaPredictor p(0.3);
  for (int i = 0; i < 100; ++i) p.observe(0.6);
  EXPECT_NEAR(p.predict(), 0.6, 1e-9);
}

TEST(Ewma, FirstObservationSeeds) {
  EwmaPredictor p(0.3, 0.0);
  p.observe(0.8);
  EXPECT_DOUBLE_EQ(p.predict(), 0.8);
}

TEST(Ewma, AlphaOneTracksExactly) {
  EwmaPredictor p(1.0);
  p.observe(0.2);
  p.observe(0.9);
  EXPECT_DOUBLE_EQ(p.predict(), 0.9);
}

TEST(Ewma, RejectsBadAlpha) {
  EXPECT_THROW(EwmaPredictor(0.0), std::invalid_argument);
  EXPECT_THROW(EwmaPredictor(1.1), std::invalid_argument);
}

// ---------------------------------------------------------------- trace I/O

TEST(TraceIo, RoundTripPreservesSamples) {
  const SampledWorkload original({0.1, 0.3, 0.5, 0.7}, 2.0);
  const std::string csv = workload_to_csv(original, 8.0, 2.0);
  const auto loaded = workload_from_csv(csv);
  ASSERT_EQ(loaded->size(), 4u);
  EXPECT_DOUBLE_EQ(loaded->sample_period(), 2.0);
  for (double t = 0.0; t < 8.0; t += 0.5) {
    EXPECT_DOUBLE_EQ(loaded->demand(t), original.demand(t)) << "t=" << t;
  }
}

TEST(TraceIo, RejectsNonUniformSpacing) {
  EXPECT_THROW(workload_from_csv("time,utilization\n0,0.1\n1,0.2\n3,0.3\n"),
               std::runtime_error);
}

TEST(TraceIo, RejectsMissingColumns) {
  EXPECT_THROW(workload_from_csv("a,b\n0,0.1\n"), std::runtime_error);
}

TEST(TraceIo, SingleRowGetsDefaultPeriod) {
  const auto w = workload_from_csv("time,utilization\n0,0.25\n");
  EXPECT_DOUBLE_EQ(w->sample_period(), 1.0);
  EXPECT_DOUBLE_EQ(w->demand(0.0), 0.25);
}

TEST(TraceIo, SingleRowHonorsExplicitPeriod) {
  const auto w = workload_from_csv("time,utilization\n0,0.25\n", 5.0);
  EXPECT_DOUBLE_EQ(w->sample_period(), 5.0);
  EXPECT_DOUBLE_EQ(w->duration(), 5.0);
  EXPECT_THROW(workload_from_csv("time,utilization\n0,0.25\n", 0.0),
               std::invalid_argument);
  EXPECT_THROW(workload_from_csv("time,utilization\n0,0.25\n", -1.0),
               std::invalid_argument);
}

TEST(TraceIo, MultiRowIgnoresSingleRowPeriodParameter) {
  // With two or more rows the spacing is inferred, never the parameter.
  const auto w = workload_from_csv("time,utilization\n0,0.1\n2,0.2\n", 7.0);
  EXPECT_DOUBLE_EQ(w->sample_period(), 2.0);
}

TEST(TraceIo, AcceptsCrlfBlankLinesAndTrailingNewlines) {
  const auto crlf = workload_from_csv(
      "time,utilization\r\n0,0.1\r\n1,0.2\r\n2,0.3\r\n");
  ASSERT_EQ(crlf->size(), 3u);
  EXPECT_DOUBLE_EQ(crlf->demand(1.0), 0.2);

  const auto blanks = workload_from_csv(
      "time,utilization\n\n0,0.1\n\n1,0.2\n\n\n");
  ASSERT_EQ(blanks->size(), 2u);
  EXPECT_DOUBLE_EQ(blanks->sample_period(), 1.0);

  const auto trailing = workload_from_csv("time,utilization\n0,0.4\n1,0.5\n\n");
  ASSERT_EQ(trailing->size(), 2u);
}

TEST(TraceIo, LoadTraceDirSortsByFilenameAndRejectsEmpty) {
  namespace fs = std::filesystem;
  const std::string dir = ::testing::TempDir() + "fsc_trace_dir_test";
  fs::create_directories(dir);
  for (const auto& entry : fs::directory_iterator(dir)) fs::remove(entry);
  EXPECT_THROW(load_trace_dir(dir), std::runtime_error);

  std::ofstream(dir + "/b.csv") << "time,utilization\n0,0.2\n";
  std::ofstream(dir + "/a.csv") << "time,utilization\n0,0.1\n";
  std::ofstream(dir + "/ignored.txt") << "not a trace";
  const auto traces = load_trace_dir(dir);
  ASSERT_EQ(traces.size(), 2u);
  EXPECT_DOUBLE_EQ(traces[0]->demand(0.0), 0.1);  // a.csv first
  EXPECT_DOUBLE_EQ(traces[1]->demand(0.0), 0.2);

  std::ofstream(dir + "/c.csv") << "time,utilization\n0,bad\n";
  EXPECT_THROW(load_trace_dir(dir), std::runtime_error);
  EXPECT_THROW(load_trace_dir(dir + "/nonexistent"), std::runtime_error);
}

TEST(TraceIo, ClampsUtilizationOnLoad) {
  const auto w = workload_from_csv("time,utilization\n0,1.5\n1,-0.5\n");
  EXPECT_DOUBLE_EQ(w->demand(0.0), 1.0);
  EXPECT_DOUBLE_EQ(w->demand(1.0), 0.0);
}

TEST(TraceIo, ToleranceIsRelativeToPeriod) {
  // Regression: the spacing check used an ABSOLUTE 1e-6 s tolerance, so a
  // long trace at a large period whose timestamps carry ordinary double
  // rounding (printed at limited precision, or accumulated as k * period)
  // failed to load even though the spacing error was ~1e-10 of the period.
  std::ostringstream csv;
  csv << "time,utilization\n";
  csv.precision(17);
  const double period = 300.0;
  for (int k = 0; k < 2000; ++k) {
    // ~6 us of absolute jitter at t ~ 6e5 s: far above the old absolute
    // 1e-6 threshold, far below 1e-6 * 300 s.
    const double jitter = (k % 2 == 0 ? 1.0 : -1.0) * 3e-6;
    csv << (static_cast<double>(k) * period + (k > 0 ? jitter : 0.0)) << ","
        << 0.5 << "\n";
  }
  const auto w = workload_from_csv(csv.str());
  EXPECT_EQ(w->size(), 2000u);
  // Period is inferred from the first two rows: 300 - 3e-6 exactly.
  EXPECT_DOUBLE_EQ(w->sample_period(), 300.0 - 3e-6);

  // Genuinely non-uniform spacing (off by 1 % of the period) still throws.
  EXPECT_THROW(
      workload_from_csv("time,utilization\n0,0.1\n300,0.2\n603,0.3\n"),
      std::runtime_error);
}

// ------------------------------------------------------------ zoh_index hoist

TEST(ZohIndex, MatchesDirectDivisionOnEngineGrids) {
  // SampledWorkload::demand hoists the per-call divide into a reciprocal
  // multiply (zoh_index).  The hoist must be invisible: for every period
  // the engines actually use and every control-period-aligned query time,
  // the index must equal the one direct truncating division yields.
  const double periods[] = {0.25, 0.5, 1.0, 2.0, 4.0, 60.0, 300.0};
  const double query_steps[] = {0.25, 1.0, 60.0, 300.0, 600.0};
  for (double p : periods) {
    const double inv = 1.0 / p;
    for (double step : query_steps) {
      for (int k = 0; k < 4000; ++k) {
        const double t = static_cast<double>(k) * step;
        const std::size_t direct = static_cast<std::size_t>(t / p);
        const std::size_t hoisted = zoh_index(t, inv, p, 1u << 30);
        ASSERT_EQ(hoisted, direct) << "p=" << p << " t=" << t;
      }
    }
  }
}

TEST(ZohIndex, ExactBoundariesLandOnNewSample) {
  // Sample k covers [k*p, (k+1)*p) — an exact boundary belongs to the NEW
  // sample even when the reciprocal multiply rounds a hair low (p = 1/3 is
  // the classic case: 3 * fl(1/3) < 1 in binary).
  const double p = 1.0 / 3.0;
  const double inv = 1.0 / p;
  for (std::size_t k = 1; k < 1000; ++k) {
    const double t = static_cast<double>(k) * p;  // fl(k * p): sample k start
    EXPECT_EQ(zoh_index(t, inv, p, 1u << 30), k) << "k=" << k;
  }
}

TEST(ZohIndex, RandomNonBoundaryTimesAgree) {
  std::mt19937_64 rng(20260808u);
  std::uniform_real_distribution<double> uni(0.0, 1e6);
  const double periods[] = {0.25, 0.5, 1.0, 2.0, 4.0, 60.0, 300.0};
  for (double p : periods) {
    const double inv = 1.0 / p;
    for (int i = 0; i < 20000; ++i) {
      const double t = uni(rng);
      ASSERT_EQ(zoh_index(t, inv, p, 1u << 30),
                static_cast<std::size_t>(t / p))
          << "p=" << p << " t=" << t;
    }
  }
}

TEST(SampledWorkload, HoistedDemandMatchesDivisionReference) {
  // End-to-end guard over the public API: demand(t) with the hoisted index
  // equals indexing samples by direct division, across a dense time sweep.
  std::mt19937_64 rng(42u);
  std::uniform_real_distribution<double> uni(0.0, 1.0);
  std::vector<double> samples(4096);
  for (double& s : samples) s = uni(rng);
  const double p = 0.75;
  const SampledWorkload w(samples, p);
  for (int i = 0; i < 50000; ++i) {
    const double t = uni(rng) * 4096.0 * p * 1.2;  // 20 % past the end
    std::size_t idx = static_cast<std::size_t>(t / p);
    if (idx >= samples.size()) idx = samples.size() - 1;
    ASSERT_EQ(w.demand(t), samples[idx]) << "t=" << t;
  }
}

}  // namespace
}  // namespace fsc
