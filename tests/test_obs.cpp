// obs/ subsystem tests: counter slot merging (deterministic, exact under
// concurrency), gauge/histogram semantics, registry snapshot ordering,
// Perfetto trace JSON validity + span nesting, snapshot exporter output,
// run manifest serialization — and the cross-layer contract: attaching
// telemetry to the rack/room engines is bit-identical to running
// detached, and the merged counters are identical across thread counts
// and chunk sizes.  The engine-attachment tests compile only when the
// hook sites do (FSC_OBS_ENABLED); the obs classes themselves are always
// tested, so an FSC_OBS=OFF build still exercises this file.
#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "coord/coupled_rack_engine.hpp"
#include "obs/manifest.hpp"
#include "obs/metrics.hpp"
#include "obs/obs.hpp"
#include "obs/progress.hpp"
#include "obs/snapshot.hpp"
#include "obs/trace.hpp"
#include "room/room_engine.hpp"

namespace fsc {
namespace {

// ------------------------------------------------- tiny JSON validator
//
// Recursive-descent acceptor for the JSON grammar — enough to assert
// "python3 -m json.tool would accept this" without a JSON dependency.

struct JsonCursor {
  const std::string& s;
  std::size_t i = 0;
  bool ok = true;

  void fail() { ok = false; }
  void ws() {
    while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) ++i;
  }
  bool eat(char c) {
    ws();
    if (i < s.size() && s[i] == c) {
      ++i;
      return true;
    }
    return false;
  }
  void expect(char c) {
    if (!eat(c)) fail();
  }
  void string() {
    expect('"');
    while (ok && i < s.size() && s[i] != '"') {
      if (s[i] == '\\') {
        ++i;
        if (i >= s.size()) return fail();
      }
      ++i;
    }
    expect('"');
  }
  void number() {
    ws();
    const std::size_t start = i;
    if (i < s.size() && (s[i] == '-' || s[i] == '+')) ++i;
    while (i < s.size() &&
           (std::isdigit(static_cast<unsigned char>(s[i])) || s[i] == '.' ||
            s[i] == 'e' || s[i] == 'E' || s[i] == '-' || s[i] == '+')) {
      ++i;
    }
    if (i == start) fail();
  }
  void literal(const char* lit) {
    ws();
    for (; *lit != '\0'; ++lit, ++i) {
      if (i >= s.size() || s[i] != *lit) return fail();
    }
  }
  void value() {
    if (!ok) return;
    ws();
    if (i >= s.size()) return fail();
    switch (s[i]) {
      case '{': object(); break;
      case '[': array(); break;
      case '"': string(); break;
      case 't': literal("true"); break;
      case 'f': literal("false"); break;
      case 'n': literal("null"); break;
      default: number();
    }
  }
  void object() {
    expect('{');
    if (eat('}')) return;
    do {
      string();
      expect(':');
      value();
    } while (ok && eat(','));
    expect('}');
  }
  void array() {
    expect('[');
    if (eat(']')) return;
    do {
      value();
    } while (ok && eat(','));
    expect(']');
  }
};

bool valid_json(const std::string& text) {
  JsonCursor c{text};
  c.value();
  c.ws();
  return c.ok && c.i == text.size();
}

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

// ------------------------------------------------------------- Counter

TEST(ObsCounter, SlotsMergeDeterministically) {
  obs::Counter c(4);
  EXPECT_EQ(c.slots(), 4u);
  c.add(10, 0);
  c.add(20, 1);
  c.add(30, 6);  // wraps to slot 2
  c.increment(3);
  EXPECT_EQ(c.slot_value(0), 10u);
  EXPECT_EQ(c.slot_value(1), 20u);
  EXPECT_EQ(c.slot_value(2), 30u);
  EXPECT_EQ(c.slot_value(3), 1u);
  EXPECT_EQ(c.value(), 61u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(ObsCounter, ConcurrentAddsAreExact) {
  obs::Counter c(8);
  constexpr std::uint64_t kPerThread = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&c, t] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        c.add(1, static_cast<std::size_t>(t));
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(c.value(), 8 * kPerThread);  // u64 adds: no lost updates
  for (std::size_t s = 0; s < 8; ++s) EXPECT_EQ(c.slot_value(s), kPerThread);
}

TEST(ObsCounter, ZeroSlotCountClampsToOne) {
  obs::Counter c(0);
  EXPECT_EQ(c.slots(), 1u);
  c.add(5, 123);
  EXPECT_EQ(c.value(), 5u);
}

// --------------------------------------------------------------- Gauge

TEST(ObsGauge, LastWriteWins) {
  obs::Gauge g;
  EXPECT_EQ(g.value(), 0.0);
  g.set(3.25);
  EXPECT_EQ(g.value(), 3.25);
  g.set(-1e300);
  EXPECT_EQ(g.value(), -1e300);
}

// ----------------------------------------------------------- Histogram

TEST(ObsHistogram, BucketsByPowerOfTwo) {
  EXPECT_EQ(obs::Histogram::bucket_index(0), 0u);
  EXPECT_EQ(obs::Histogram::bucket_index(1), 0u);
  EXPECT_EQ(obs::Histogram::bucket_index(2), 1u);
  EXPECT_EQ(obs::Histogram::bucket_index(1023), 9u);
  EXPECT_EQ(obs::Histogram::bucket_index(1024), 10u);

  obs::Histogram h;
  h.observe(3);
  h.observe(5);
  h.observe(1000);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_EQ(h.sum(), 1008u);
  EXPECT_DOUBLE_EQ(h.mean(), 336.0);
  EXPECT_EQ(h.bucket(1), 1u);  // 3 in [2, 4)
  EXPECT_EQ(h.bucket(2), 1u);  // 5 in [4, 8)
  EXPECT_EQ(h.bucket(9), 1u);  // 1000 in [512, 1024)
  // p50 lands in the bucket of the median observation (5 -> [4, 8)).
  EXPECT_EQ(h.percentile(0.5), 8u);
  EXPECT_EQ(h.percentile(1.0), 1024u);
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.percentile(0.5), 0u);
}

// ------------------------------------------------------------ Registry

TEST(ObsRegistry, GetOrCreateReturnsStableReferences) {
  obs::MetricsRegistry reg(4);
  obs::Counter& a = reg.counter("x");
  obs::Counter& b = reg.counter("x");
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(a.slots(), 4u);  // registry counters inherit the shard slots
  a.add(7, 2);
  EXPECT_EQ(reg.counter("x").value(), 7u);
  EXPECT_NE(&reg.counter("y"), &a);
}

TEST(ObsRegistry, SnapshotWalksRegistrationOrder) {
  obs::MetricsRegistry reg;
  reg.counter("b").add(2);
  reg.counter("a").add(1);
  reg.gauge("g").set(0.5);
  reg.histogram("h").observe(100);
  const auto snap = reg.snapshot();
  ASSERT_EQ(snap.counters.size(), 2u);
  EXPECT_EQ(snap.counters[0].first, "b");  // registration, not lexical
  EXPECT_EQ(snap.counters[1].first, "a");
  EXPECT_EQ(snap.counter("b"), 2u);
  EXPECT_EQ(snap.counter("absent"), 0u);
  ASSERT_EQ(snap.gauges.size(), 1u);
  EXPECT_EQ(snap.gauges[0].second, 0.5);
  ASSERT_EQ(snap.histograms.size(), 1u);
  EXPECT_EQ(snap.histograms[0].count, 1u);
}

TEST(ObsRegistry, ToJsonIsValidJson) {
  obs::MetricsRegistry reg;
  reg.counter("room.rounds").add(12);
  reg.gauge("room.time_s").set(360.0);
  reg.histogram("room.round_ns").observe(1234567);
  const std::string json = reg.to_json();
  EXPECT_TRUE(valid_json(json)) << json;
  EXPECT_NE(json.find("\"room.rounds\": 12"), std::string::npos);
}

// --------------------------------------------------------------- Trace

TEST(ObsTrace, WritesValidNestedTraceEventJson) {
  obs::TraceRecorder rec;
  {
    const std::int64_t t0 = obs::monotonic_ns();
    const std::int64_t t1 = obs::monotonic_ns();
    rec.complete("outer", "round", t0, obs::monotonic_ns(), 0, 0, 1);
    rec.complete("inner", "exec", t0, t1, 0, 3, 1);  // nested in outer
    rec.instant("mark", "sched", 2, 0, 1);
  }
  std::thread other([&rec] {
    const std::int64_t t0 = obs::monotonic_ns();
    rec.complete("worker", "exec", t0, obs::monotonic_ns(), 1, 7, 2);
  });
  other.join();
  EXPECT_EQ(rec.recorded_events(), 4u);
  EXPECT_EQ(rec.dropped_events(), 0u);

  std::ostringstream os;
  rec.write_json(os, "{\"seed\": 1}");
  const std::string json = os.str();
  EXPECT_TRUE(valid_json(json)) << json;
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"otherData\""), std::string::npos);
  EXPECT_NE(json.find("\"outer\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"i\""), std::string::npos);  // the instant
  // Two recording threads -> two thread_name metadata rows.
  std::size_t tracks = 0, pos = 0;
  while ((pos = json.find("thread_name", pos)) != std::string::npos) {
    ++tracks;
    ++pos;
  }
  EXPECT_EQ(tracks, 2u);
}

TEST(ObsTrace, OverflowEvictsOldestAndCounts) {
  obs::TraceRecorder rec(4);
  for (int i = 0; i < 10; ++i) {
    rec.complete("e", "c", i, i + 1);
  }
  EXPECT_EQ(rec.recorded_events(), 4u);
  EXPECT_EQ(rec.dropped_events(), 6u);
}

TEST(ObsTrace, InternStoresStableCopies) {
  obs::TraceRecorder rec;
  std::string name = "thermal-headroom";
  const char* a = rec.intern(name);
  name[0] = 'X';  // the interned copy must not alias caller storage
  EXPECT_STREQ(a, "thermal-headroom");
  EXPECT_EQ(rec.intern("thermal-headroom"), a);  // deduplicated
}

TEST(ObsTrace, ScopedSpanOnNullRecorderIsNoOp) {
  const obs::ScopedSpan span(nullptr, "name", "cat");  // must not crash
  obs::Telemetry t;
  EXPECT_FALSE(t.attached());
  t.trace = reinterpret_cast<obs::TraceRecorder*>(0x1);
  EXPECT_TRUE(t.attached());
}

// ------------------------------------------------------------ Manifest

TEST(ObsManifest, CollectsAndSerializesValidJson) {
  obs::RunManifest m = obs::RunManifest::collect();
  EXPECT_FALSE(m.cpu_features.empty());
  EXPECT_FALSE(m.simd_dispatch.empty());
  m.threads = 4;
  m.seed = 99;
  m.command = "fsc_room --racks 4 \"quoted\"";
  const std::string json = m.to_json();
  EXPECT_TRUE(valid_json(json)) << json;
  EXPECT_NE(json.find("\"seed\": 99"), std::string::npos);
  EXPECT_NE(json.find("\\\"quoted\\\""), std::string::npos);
}

TEST(ObsManifest, CommandLineJoinsArgv) {
  const char* argv[] = {"prog", "--x", "1"};
  EXPECT_EQ(obs::command_line(3, const_cast<char**>(argv)), "prog --x 1");
}

// ---------------------------------------------------- SnapshotExporter

obs::SnapshotExporter::Row sample_row(std::size_t round) {
  obs::SnapshotExporter::Row r;
  r.round = round;
  r.time_s = static_cast<double>(round) * 30.0;
  r.rack = 0;
  r.cpu_watts = 500.0;
  r.mean_inlet_c = 30.0;
  r.max_inlet_c = 31.0;
  r.mean_fan_rpm = 6000.0;
  r.total_violations = round;
  return r;
}

TEST(ObsSnapshot, WritesCsvWithHeader) {
  const std::string path = testing::TempDir() + "obs_rows.csv";
  {
    obs::SnapshotExporter exporter(path, 5);
    ASSERT_TRUE(exporter.ok());
    EXPECT_FALSE(exporter.due(4));
    EXPECT_TRUE(exporter.due(5));
    EXPECT_FALSE(exporter.due(0));
    exporter.write(sample_row(5));
    exporter.write(sample_row(10));
  }
  const std::string text = slurp(path);
  EXPECT_EQ(text.find(obs::SnapshotExporter::header_csv()), 0u);
  EXPECT_EQ(std::count(text.begin(), text.end(), '\n'), 3);
  std::remove(path.c_str());
}

TEST(ObsSnapshot, JsonExtensionSelectsValidJsonArray) {
  const std::string path = testing::TempDir() + "obs_rows.json";
  {
    obs::SnapshotExporter exporter(path, 2);
    ASSERT_TRUE(exporter.ok());
    exporter.write(sample_row(2));
    exporter.write(sample_row(4));
    exporter.close();
    exporter.close();  // idempotent
  }
  const std::string text = slurp(path);
  EXPECT_TRUE(valid_json(text)) << text;
  EXPECT_NE(text.find("\"round\": 2"), std::string::npos);
  std::remove(path.c_str());
}

TEST(ObsSnapshot, EmptyJsonRunStillClosesTheArray) {
  const std::string path = testing::TempDir() + "obs_empty.json";
  { obs::SnapshotExporter exporter(path, 1); }
  EXPECT_TRUE(valid_json(slurp(path)));
  std::remove(path.c_str());
}

// ------------------------------------------------------- ProgressMeter

TEST(ObsProgress, TicksAndFinishReportToStream) {
  std::ostringstream os;
  obs::ProgressMeter meter(600.0, 0.0, &os);
  meter.tick(10, 300.0, 2);
  meter.finish(20, 600.0, 5);
  const std::string text = os.str();
  EXPECT_NE(text.find("progress:"), std::string::npos);
  EXPECT_NE(text.find("done:"), std::string::npos);
  EXPECT_NE(text.find("violations 5"), std::string::npos);
  EXPECT_NE(text.find("50.0%"), std::string::npos);
}

#if FSC_OBS_ENABLED

// ------------------------------------- engine attachment (hook sites)

CoupledRackParams small_rack(std::uint64_t seed, std::size_t n = 5,
                             double duration_s = 120.0) {
  CoupledRackParams p;
  p.rack.num_servers = n;
  p.rack.base_seed = seed;
  p.rack.sim.duration_s = duration_s;
  p.rack.sim.initial_utilization = 0.1;
  p.rack.workload.base.duration_s = duration_s;
  p.coord.coordination_period_s = 30.0;
  return p;
}

RoomParams small_room(std::size_t racks = 2, std::size_t slots = 5,
                      double duration_s = 120.0) {
  RoomParams p;
  for (std::size_t i = 0; i < racks; ++i) {
    p.racks.push_back(small_rack(1000 + i, slots, duration_s));
  }
  p.scheduler = "thermal-headroom";
  p.sched.hysteresis_celsius = 0.25;  // migrations actually fire
  return p;
}

void expect_identical(const CoupledRackResult& a, const CoupledRackResult& b) {
  ASSERT_EQ(a.slots.size(), b.slots.size());
  EXPECT_EQ(a.fan_energy_joules, b.fan_energy_joules);
  EXPECT_EQ(a.cpu_energy_joules, b.cpu_energy_joules);
  EXPECT_EQ(a.deadline_violation_percent, b.deadline_violation_percent);
  EXPECT_EQ(a.thermal_violation_percent, b.thermal_violation_percent);
  EXPECT_EQ(a.max_junction_stats.max(), b.max_junction_stats.max());
  EXPECT_EQ(a.coordination_rounds, b.coordination_rounds);
  for (std::size_t i = 0; i < a.slots.size(); ++i) {
    EXPECT_EQ(a.slots[i].deadline_violations, b.slots[i].deadline_violations)
        << i;
    EXPECT_EQ(a.slots[i].result.fan_energy_joules,
              b.slots[i].result.fan_energy_joules)
        << i;
    EXPECT_EQ(a.slots[i].inlet_stats.mean(), b.slots[i].inlet_stats.mean())
        << i;
    EXPECT_EQ(a.slots[i].fan_override_rounds, b.slots[i].fan_override_rounds)
        << i;
  }
}

void expect_identical(const RoomResult& a, const RoomResult& b) {
  ASSERT_EQ(a.racks.size(), b.racks.size());
  EXPECT_EQ(a.fan_energy_joules, b.fan_energy_joules);
  EXPECT_EQ(a.cpu_energy_joules, b.cpu_energy_joules);
  EXPECT_EQ(a.deadline_violation_percent, b.deadline_violation_percent);
  EXPECT_EQ(a.migration_events, b.migration_events);
  for (std::size_t i = 0; i < a.racks.size(); ++i) {
    EXPECT_EQ(a.racks[i].final_demand_scale, b.racks[i].final_demand_scale)
        << i;
    expect_identical(a.racks[i].result, b.racks[i].result);
  }
}

TEST(ObsEngine, RackBitIdenticalWithTelemetryAttached) {
  const CoupledRackParams detached = small_rack(77);
  const CoupledRackResult base = CoupledRackEngine(detached, 2).run();

  obs::MetricsRegistry registry(2);
  obs::TraceRecorder trace;
  CoupledRackParams attached = small_rack(77);
  attached.obs.metrics = &registry;
  attached.obs.trace = &trace;
  const CoupledRackResult observed = CoupledRackEngine(attached, 2).run();

  expect_identical(base, observed);
  EXPECT_GT(registry.snapshot().counter("rack.rounds"), 0u);
  EXPECT_GT(trace.recorded_events(), 0u);
}

TEST(ObsEngine, RoomBitIdenticalWithAllSinksAttached) {
  const RoomResult base = RoomEngine(small_room(), 2).run();

  obs::MetricsRegistry registry(2);
  obs::TraceRecorder trace;
  const std::string series = testing::TempDir() + "obs_series.json";
  obs::SnapshotExporter exporter(series, 2);
  std::ostringstream progress_os;
  obs::ProgressMeter progress(120.0, 0.0, &progress_os);

  RoomParams attached = small_room();
  attached.obs.metrics = &registry;
  attached.obs.trace = &trace;
  attached.obs.snapshot = &exporter;
  attached.obs.progress = &progress;
  const RoomResult observed = RoomEngine(attached, 2).run();

  expect_identical(base, observed);
  EXPECT_TRUE(valid_json(slurp(series)));
  EXPECT_NE(progress_os.str().find("done:"), std::string::npos);
  std::remove(series.c_str());
}

TEST(ObsEngine, RegistryCountersIdenticalAcrossThreadCounts) {
  std::vector<std::pair<std::string, std::uint64_t>> reference;
  for (const std::size_t threads : {1u, 2u, 8u}) {
    obs::MetricsRegistry registry(threads);
    RoomParams p = small_room();
    p.obs.metrics = &registry;
    RoomEngine(p, threads).run();
    const auto counters = registry.snapshot().counters;
    if (reference.empty()) {
      reference = counters;
      EXPECT_GT(registry.snapshot().counter("batch.memo_hit"), 0u);
      // 120 s / 30 s = 4 stepping rounds; the final one ends the run
      // before the scheduling tail, so 3 scheduled rounds are counted.
      EXPECT_EQ(registry.snapshot().counter("room.rounds"), 3u);
    } else {
      // Same names, same order, same merged totals — shard partials moved
      // between slots, the merge did not.
      EXPECT_EQ(counters, reference) << threads << " threads";
    }
  }
}

TEST(ObsEngine, MemoTotalsIdenticalAcrossChunkSizes) {
  // The shared/miss split shifts with chunk boundaries (the rolling-share
  // lane resets per chunk); the lane total cannot.
  std::uint64_t reference_lanes = 0;
  std::uint64_t reference_hits = 0;
  for (const std::size_t chunk : {std::size_t{0}, std::size_t{3}}) {
    obs::MetricsRegistry registry;
    CoupledRackParams p = small_rack(99, 7);
    p.chunk = chunk;
    p.obs.metrics = &registry;
    CoupledRackEngine(p, 2).run();
    const auto snap = registry.snapshot();
    const std::uint64_t lanes = snap.counter("batch.memo_hit") +
                                snap.counter("batch.memo_shared_hit") +
                                snap.counter("batch.memo_miss");
    const std::uint64_t full_hits = snap.counter("batch.memo_hit");
    ASSERT_GT(lanes, 0u);
    if (reference_lanes == 0) {
      reference_lanes = lanes;
      reference_hits = full_hits;
    } else {
      EXPECT_EQ(lanes, reference_lanes) << "chunk " << chunk;
      EXPECT_EQ(full_hits, reference_hits) << "chunk " << chunk;
    }
  }
}

TEST(ObsEngine, BatchAccessorsReadTheAttachedRegistry) {
  obs::MetricsRegistry registry;
  CoupledRackParams p = small_rack(11);
  p.obs.metrics = &registry;
  const CoupledRackEngine engine(p, 1);
  engine.run();
  const auto snap = registry.snapshot();
  EXPECT_GT(snap.counter("batch.memo_hit") + snap.counter("batch.memo_miss"),
            0u);
}

TEST(ObsEngine, TraceSpansCoverEveryLayerAndNest) {
  obs::MetricsRegistry registry;
  obs::TraceRecorder trace;
  RoomParams p = small_room();
  p.obs.metrics = &registry;
  p.obs.trace = &trace;
  const RoomResult result = RoomEngine(p, 2).run();

  std::ostringstream os;
  trace.write_json(os);
  const std::string json = os.str();
  ASSERT_TRUE(valid_json(json)) << json.substr(0, 400);
  for (const char* name : {"room.round", "room.schedule", "room.plenum",
                           "rack.shard", "rack.coord", "rack.plenum"}) {
    EXPECT_NE(json.find(std::string("\"") + name + "\""), std::string::npos)
        << name;
  }
  // Migration instants mirror the engine's own count.
  std::size_t instants = 0, pos = 0;
  while ((pos = json.find("\"room.migration\"", pos)) != std::string::npos) {
    ++instants;
    ++pos;
  }
  EXPECT_EQ(instants, result.migration_events);
  EXPECT_GT(result.migration_events, 0u);  // scenario is tuned to migrate

  // Spans on one track must nest: any two either disjoint or contained.
  // Parse (tid, ts, dur) off each complete-event line (one event per
  // line, fixed key order — the writer is ours).
  struct Span {
    int tid;
    double ts, dur;
  };
  std::vector<Span> spans;
  std::istringstream lines(json);
  std::string line;
  while (std::getline(lines, line)) {
    if (line.find("\"ph\": \"X\"") == std::string::npos) continue;
    Span s{};
    const auto num_after = [&line](const char* key) {
      const std::size_t k = line.find(key);
      EXPECT_NE(k, std::string::npos) << line;
      return std::atof(line.c_str() + k + std::strlen(key));
    };
    s.tid = static_cast<int>(num_after("\"tid\": "));
    s.ts = num_after("\"ts\": ");
    s.dur = num_after("\"dur\": ");
    spans.push_back(s);
  }
  ASSERT_GT(spans.size(), 8u);
  for (std::size_t i = 0; i < spans.size(); ++i) {
    for (std::size_t j = i + 1; j < spans.size(); ++j) {
      const Span& a = spans[i];
      const Span& b = spans[j];
      if (a.tid != b.tid) continue;
      const double a0 = a.ts, a1 = a.ts + a.dur;
      const double b0 = b.ts, b1 = b.ts + b.dur;
      const bool disjoint = a1 <= b0 || b1 <= a0;
      const bool a_in_b = b0 <= a0 && a1 <= b1;
      const bool b_in_a = a0 <= b0 && b1 <= a1;
      EXPECT_TRUE(disjoint || a_in_b || b_in_a)
          << "spans overlap without nesting on tid " << a.tid << ": [" << a0
          << "," << a1 << ") vs [" << b0 << "," << b1 << ")";
    }
  }
}

TEST(ObsEngine, SnapshotExporterEmitsPerRackAndAggregateRows) {
  obs::MetricsRegistry registry;
  const std::string path = testing::TempDir() + "obs_room_series.csv";
  obs::SnapshotExporter exporter(path, 1);
  RoomParams p = small_room();
  p.obs.metrics = &registry;
  p.obs.snapshot = &exporter;
  RoomEngine(p, 1).run();
  const std::string text = slurp(path);
  // 3 scheduled rounds, cadence 1 -> 3 x (2 racks + 1 aggregate) + header.
  EXPECT_EQ(std::count(text.begin(), text.end(), '\n'), 10);
  EXPECT_NE(text.find(",-1,"), std::string::npos);  // the aggregate row
  std::remove(path.c_str());
}

#endif  // FSC_OBS_ENABLED

}  // namespace
}  // namespace fsc
