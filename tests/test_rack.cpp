// Rack + BatchRunner tests: spec stamping is reproducible and slot-local,
// jitter stays in bounds, and the parallel batch runner is deterministic
// under any thread count.
#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "rack/batch_runner.hpp"
#include "rack/rack.hpp"

namespace fsc {
namespace {

RackParams small_params(std::size_t n = 4) {
  RackParams p;
  p.num_servers = n;
  p.base_seed = 1234;
  p.sim.duration_s = 120.0;
  p.sim.initial_utilization = 0.1;
  p.workload.base.duration_s = p.sim.duration_s;
  return p;
}

TEST(Rack, RejectsEmptyRackAndNegativeJitter) {
  RackParams p = small_params(0);
  EXPECT_THROW(Rack{p}, std::invalid_argument);
  p = small_params();
  p.jitter.cpu_power_fraction = -0.1;
  EXPECT_THROW(Rack{p}, std::invalid_argument);
}

TEST(Rack, StampsRequestedNumberOfSpecs) {
  const Rack rack(small_params(6));
  EXPECT_EQ(rack.size(), 6u);
  for (std::size_t i = 0; i < rack.size(); ++i) {
    EXPECT_EQ(rack.server(i).index, i);
  }
}

TEST(Rack, SpecsAreReproducible) {
  const Rack a(small_params());
  const Rack b(small_params());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.server(i).seed, b.server(i).seed);
    EXPECT_EQ(a.server(i).server.thermal.params().ambient_celsius,
              b.server(i).server.thermal.params().ambient_celsius);
    EXPECT_EQ(a.server(i).workload.base.phase_s, b.server(i).workload.base.phase_s);
  }
}

TEST(Rack, SlotSpecIndependentOfRackSize) {
  // Server i's spec depends only on (base seed, i), not on how many other
  // servers exist — growing a rack never reshuffles existing machines.
  const Rack small(small_params(2));
  const Rack large(small_params(8));
  for (std::size_t i = 0; i < small.size(); ++i) {
    EXPECT_EQ(small.server(i).seed, large.server(i).seed);
    EXPECT_EQ(small.server(i).server.thermal.params().ambient_celsius,
              large.server(i).server.thermal.params().ambient_celsius);
  }
}

TEST(Rack, ServersAreHeterogeneousWithinBounds) {
  RackParams p = small_params(16);
  const Rack rack(p);
  const double nominal_ambient = p.server.thermal.params().ambient_celsius;
  const double nominal_dyn = p.server.cpu_power.dynamic_power();
  bool any_differs = false;
  for (const RackServerSpec& spec : rack.servers()) {
    const double ambient = spec.server.thermal.params().ambient_celsius;
    EXPECT_LE(std::fabs(ambient - nominal_ambient),
              p.jitter.ambient_delta_celsius + 1e-12);
    const double dyn_ratio = spec.server.cpu_power.dynamic_power() / nominal_dyn;
    EXPECT_LE(std::fabs(dyn_ratio - 1.0), p.jitter.cpu_power_fraction + 1e-12);
    EXPECT_GE(spec.workload.base.phase_s, 0.0);
    EXPECT_LE(spec.workload.base.phase_s,
              p.jitter.workload_phase_fraction * p.workload.base.period_s);
    if (ambient != nominal_ambient) any_differs = true;
  }
  EXPECT_TRUE(any_differs);
}

TEST(Rack, ZeroJitterReproducesTheTemplateExactly) {
  RackParams p = small_params();
  p.jitter = RackJitter{0.0, 0.0, 0.0, 0.0, 0.0};
  const Rack rack(p);
  for (const RackServerSpec& spec : rack.servers()) {
    EXPECT_EQ(spec.server.thermal.params().ambient_celsius,
              p.server.thermal.params().ambient_celsius);
    EXPECT_EQ(spec.server.cpu_power.dynamic_power(),
              p.server.cpu_power.dynamic_power());
    EXPECT_EQ(spec.workload.base.phase_s, 0.0);
    EXPECT_EQ(spec.workload.base.high, p.workload.base.high);
  }
}

TEST(BatchRunner, RejectsZeroThreads) {
  EXPECT_THROW(BatchRunner(0), std::invalid_argument);
}

TEST(BatchRunner, AggregatesAllServersInSlotOrder) {
  const Rack rack(small_params());
  const RackResult result = BatchRunner(2).run(rack);
  ASSERT_EQ(result.size(), rack.size());
  double fan_sum = 0.0;
  for (std::size_t i = 0; i < result.servers.size(); ++i) {
    EXPECT_EQ(result.servers[i].index, i);
    EXPECT_GT(result.servers[i].result.cpu_energy_joules, 0.0);
    fan_sum += result.servers[i].result.fan_energy_joules;
  }
  EXPECT_DOUBLE_EQ(result.fan_energy_joules, fan_sum);
  EXPECT_DOUBLE_EQ(result.total_energy_joules,
                   result.fan_energy_joules + result.cpu_energy_joules);
  EXPECT_EQ(result.duration_s, rack.params().sim.duration_s);
  EXPECT_FALSE(result.to_table().empty());
}

TEST(BatchRunner, ReportsActualSimulatedDuration) {
  // A fractional duration rounds up to whole CPU periods inside the engine;
  // the rack aggregate must report what was actually simulated.
  RackParams p = small_params(2);
  p.sim.duration_s = 100.5;
  p.workload.base.duration_s = 101.0;
  const RackResult result = BatchRunner(1).run(Rack(p));
  EXPECT_EQ(result.duration_s, 101.0);
  EXPECT_EQ(result.servers[0].duration_s, 101.0);
}

TEST(BatchRunner, DeterministicAcrossThreadCounts) {
  // Same rack, 1 worker vs 4 workers: parallelism must change the wall
  // clock only — every per-server number and every aggregate must be
  // bit-identical.
  const Rack rack(small_params(6));
  const RackResult serial = BatchRunner(1).run(rack);
  const RackResult parallel = BatchRunner(4).run(rack);

  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial.servers[i].seed, parallel.servers[i].seed);
    EXPECT_EQ(serial.servers[i].result.fan_energy_joules,
              parallel.servers[i].result.fan_energy_joules);
    EXPECT_EQ(serial.servers[i].result.cpu_energy_joules,
              parallel.servers[i].result.cpu_energy_joules);
    EXPECT_EQ(serial.servers[i].result.deadline_violation_percent,
              parallel.servers[i].result.deadline_violation_percent);
    EXPECT_EQ(serial.servers[i].result.max_junction_celsius,
              parallel.servers[i].result.max_junction_celsius);
  }
  EXPECT_EQ(serial.fan_energy_joules, parallel.fan_energy_joules);
  EXPECT_EQ(serial.cpu_energy_joules, parallel.cpu_energy_joules);
  EXPECT_EQ(serial.deadline_violation_percent,
            parallel.deadline_violation_percent);
  EXPECT_EQ(serial.thermal_violation_percent,
            parallel.thermal_violation_percent);
  EXPECT_EQ(serial.max_junction_stats.mean(), parallel.max_junction_stats.mean());
}

TEST(BatchRunner, RepeatedRunsAreIdentical) {
  const Rack rack(small_params());
  const BatchRunner runner(2);
  const RackResult first = runner.run(rack);
  const RackResult second = runner.run(rack);
  EXPECT_EQ(first.total_energy_joules, second.total_energy_joules);
  EXPECT_EQ(first.deadline_violation_percent, second.deadline_violation_percent);
}

TEST(BatchRunner, RunServerMatchesBatchEntry) {
  const Rack rack(small_params());
  const RackResult batch = BatchRunner(2).run(rack);
  const RackServerSummary solo = BatchRunner::run_server(
      rack.server(1), rack.params().policy, rack.params().sim);
  EXPECT_EQ(solo.result.fan_energy_joules,
            batch.servers[1].result.fan_energy_joules);
  EXPECT_EQ(solo.result.max_junction_celsius,
            batch.servers[1].result.max_junction_celsius);
}

TEST(BatchRunner, UnknownPolicyPropagatesFromWorkers) {
  RackParams p = small_params();
  p.policy = "no-such-policy";
  const Rack rack(p);
  EXPECT_THROW(BatchRunner(2).run(rack), std::out_of_range);
}

}  // namespace
}  // namespace fsc
