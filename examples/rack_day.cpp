// rack_day: simulate a rack of heterogeneous servers (per-slot thermal and
// workload spread) under the paper's spiky square workload, fanned out
// across a thread pool, and print per-slot plus rack-level statistics.
//
// Usage: rack_day [num_servers] [threads] [duration_seconds] [policy]
#include <cstdlib>
#include <iostream>
#include <thread>

#include "core/policy_factory.hpp"
#include "rack/batch_runner.hpp"
#include "rack/rack.hpp"

int main(int argc, char** argv) {
  using namespace fsc;

  std::size_t num_servers = 16;
  std::size_t threads = std::max(1u, std::thread::hardware_concurrency());
  double duration_s = 3600.0;
  std::string policy = "r-coord+a-tref+ss-fan";
  if (argc > 1) num_servers = static_cast<std::size_t>(std::atoll(argv[1]));
  if (argc > 2) threads = static_cast<std::size_t>(std::atoll(argv[2]));
  if (argc > 3) duration_s = std::atof(argv[3]);
  if (argc > 4) policy = argv[4];
  if (num_servers == 0 || threads == 0 || duration_s <= 0.0) {
    std::cerr << "usage: rack_day [num_servers>0] [threads>0] [duration_s>0] "
                 "[policy]\n";
    return 1;
  }
  if (!PolicyFactory::instance().contains(policy)) {
    std::cerr << "unknown policy '" << policy << "'; known:";
    for (const auto& name : PolicyFactory::instance().names())
      std::cerr << " " << name;
    std::cerr << "\n";
    return 1;
  }

  RackParams params;
  params.num_servers = num_servers;
  params.base_seed = 2014;
  params.policy = policy;
  params.sim.duration_s = duration_s;
  params.sim.initial_utilization = 0.1;
  params.workload.base.duration_s = duration_s;

  const Rack rack(params);
  const BatchRunner runner(threads);
  const RackResult result = runner.run(rack);

  std::cout << "=== rack_day: " << num_servers << " jittered servers, policy '"
            << policy << "' (" << PolicyFactory::instance().describe(policy)
            << "), " << threads << " thread(s) ===\n\n";
  std::cout << result.to_table();
  return 0;
}
