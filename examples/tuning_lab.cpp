// tuning_lab: run the Ziegler-Nichols closed-loop tuning procedure
// (paper §IV-A, Eqns. 5-7) against the simulated Table I plant at several
// fan-speed operating regions and print the resulting gain schedule.
//
// This regenerates the constants checked into
// SolutionConfig::default_gain_schedule() from first principles.
//
// Usage: tuning_lab [region_rpm ...]   (default: 2000 6000)
#include <cstdlib>
#include <iomanip>
#include <iostream>
#include <vector>

#include "sim/zn_harness.hpp"

int main(int argc, char** argv) {
  using namespace fsc;

  std::vector<double> regions;
  for (int i = 1; i < argc; ++i) {
    const double rpm = std::atof(argv[i]);
    if (rpm <= 0.0) {
      std::cerr << "bad region speed: " << argv[i] << "\n";
      return 1;
    }
    regions.push_back(rpm);
  }
  if (regions.empty()) regions = {2000.0, 6000.0};

  ServerParams server;
  ZnHarnessParams harness;
  ZnSearchParams search;
  search.kp_initial = 10.0;

  std::cout << "=== Ziegler-Nichols closed-loop tuning on the Table I plant ===\n";
  std::cout << "(10 s sensor lag in the loop; reference " << harness.reference_celsius
            << " degC; fan period " << harness.fan_period_s << " s)\n\n";
  std::cout << std::left << std::setw(12) << "region" << std::setw(12) << "u_op"
            << std::setw(12) << "Ku" << std::setw(12) << "Pu(s)" << std::setw(12)
            << "KP" << std::setw(12) << "KI" << std::setw(12) << "KD" << "\n";

  for (double rpm : regions) {
    const double u_op = operating_utilization(server, rpm, harness.reference_celsius);
    const auto experiment = make_region_experiment(server, rpm, harness);
    ZnSearchParams sp = search;
    sp.sample_period_s = harness.fan_period_s;
    const auto ug = find_ultimate_gain(experiment, sp);
    if (!ug) {
      std::cout << std::left << std::setw(12) << rpm << "no ultimate gain found\n";
      continue;
    }
    // Same post-processing as tune_pid: discretize at the fan period, then
    // set the first-step response to 0.45 Ku (deadbeat for a 1 degC ADC).
    const auto gains = normalize_first_step(
        discretize_gains(ziegler_nichols_gains(*ug), harness.fan_period_s),
        0.45 * ug->ku);
    std::cout << std::left << std::fixed << std::setprecision(3) << std::setw(12)
              << rpm << std::setw(12) << u_op << std::setw(12) << ug->ku
              << std::setw(12) << ug->pu_seconds << std::setw(12) << gains.kp
              << std::setw(12) << gains.ki << std::setw(12) << gains.kd << "\n";
    std::cout.unsetf(std::ios::fixed);
  }

  std::cout << "\nPaste into SolutionConfig::default_gain_schedule() as\n"
               "GainRegion{<region>, PidGains{KP, KI, KD}} entries.\n";
  return 0;
}
