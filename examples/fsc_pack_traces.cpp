// fsc_pack_traces: build, inspect, and unpack .fst trace packs.
//
// Packing (any mix of sources, in one invocation):
//
//   fsc_pack_traces --csv-dir examples/traces -o traces.fst
//   fsc_pack_traces --google task_usage.csv --azure vm_cpu.csv -o real.fst
//   fsc_pack_traces --csv-dir d --variants 1024 --variant-duration 86400
//       -o corpus.fst
//
// --variants N runs the trace-synthesis fitter (workload/trace_fit.hpp)
// over every source trace and appends N seeded statistically-matched
// variants per source — one downloaded trace becomes an arbitrarily large
// distinct-trace corpus.
//
// Inspecting / unpacking:
//
//   fsc_pack_traces --list traces.fst
//   fsc_pack_traces --unpack traces.fst --out-dir unpacked/
//
// Unpacked CSVs carry 17 significant digits, so a --traces run over the
// unpacked directory is bit-identical to a --trace-pack run over the pack
// itself (CI's pack->replay smoke relies on this).
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "cli_util.hpp"
#include "util/rng.hpp"
#include "workload/importers.hpp"
#include "workload/trace_fit.hpp"
#include "workload/trace_io.hpp"
#include "workload/trace_store.hpp"

namespace {

int usage() {
  std::cerr
      << "usage: fsc_pack_traces [sources...] -o PACK.fst\n"
         "       fsc_pack_traces --list PACK.fst\n"
         "       fsc_pack_traces --unpack PACK.fst --out-dir DIR\n"
         "sources:\n"
         "  --csv-dir DIR         every *.csv in DIR (time,utilization)\n"
         "  --google FILE         Google cluster-usage task_usage rows\n"
         "  --azure FILE          Azure vm_cpu_readings rows\n"
         "  --bucket SECS         importer bucket size (default 300)\n"
         "  --variants N          append N fitted seeded variants per source\n"
         "  --variant-seed S      base seed for the variants (default 1)\n"
         "  --variant-duration T  variant length in seconds (default: source)\n";
  return 2;
}

struct SourceTrace {
  std::string name;
  std::vector<double> samples;
  double period_s = 0.0;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace fsc;

  std::string out_pack, list_pack, unpack_pack, out_dir;
  double bucket_s = 300.0;
  std::size_t variants = 0;
  std::uint64_t variant_seed = 1;
  double variant_duration_s = -1.0;
  std::vector<SourceTrace> sources;

  const auto need_value = [&](int i) { return i + 1 < argc; };
  try {
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg == "-o" || arg == "--out") {
        if (!need_value(i)) return usage();
        out_pack = argv[++i];
      } else if (arg == "--list") {
        if (!need_value(i)) return usage();
        list_pack = argv[++i];
      } else if (arg == "--unpack") {
        if (!need_value(i)) return usage();
        unpack_pack = argv[++i];
      } else if (arg == "--out-dir") {
        if (!need_value(i)) return usage();
        out_dir = argv[++i];
      } else if (arg == "--bucket") {
        if (!need_value(i) || (bucket_s = std::atof(argv[++i])) <= 0.0) {
          return usage();
        }
      } else if (arg == "--variants") {
        if (!need_value(i) ||
            !fsc_cli::parse_nonnegative(argv[++i], variants)) {
          return usage();
        }
      } else if (arg == "--variant-seed") {
        if (!need_value(i)) return usage();
        variant_seed =
            static_cast<std::uint64_t>(std::strtoull(argv[++i], nullptr, 10));
      } else if (arg == "--variant-duration") {
        if (!need_value(i) ||
            (variant_duration_s = std::atof(argv[++i])) <= 0.0) {
          return usage();
        }
      } else if (arg == "--csv-dir") {
        if (!need_value(i)) return usage();
        const std::string dir = argv[++i];
        const auto paths = list_trace_files(dir);
        if (paths.empty()) {
          std::cerr << "no .csv traces in " << dir << "\n";
          return 1;
        }
        for (const std::string& path : paths) {
          const auto w = load_workload(path);
          SourceTrace s;
          s.name = std::filesystem::path(path).stem().string();
          s.samples.assign(w->data(), w->data() + w->size());
          s.period_s = w->sample_period();
          sources.push_back(std::move(s));
        }
      } else if (arg == "--google" || arg == "--azure") {
        if (!need_value(i)) return usage();
        const std::string schema = arg.substr(2);
        for (ImportedTrace& t :
             import_trace_file(schema, argv[++i], bucket_s)) {
          sources.push_back(SourceTrace{std::move(t.name),
                                        std::move(t.samples),
                                        t.sample_period_s});
        }
      } else {
        std::cerr << "unknown flag: " << arg << "\n";
        return usage();
      }
    }

    // ---- list ----------------------------------------------------------
    if (!list_pack.empty()) {
      const auto store = TraceStore::open(list_pack);
      std::printf("%s: %zu trace(s), %s\n", list_pack.c_str(), store->size(),
                  store->mapped() ? "mmap" : "heap");
      for (std::size_t i = 0; i < store->size(); ++i) {
        std::printf("  [%4zu] %-32s %8zu samples @ %gs  (%.1f h)  hash %016llx\n",
                    i, store->name(i).c_str(), store->sample_count(i),
                    store->sample_period(i), store->duration(i) / 3600.0,
                    static_cast<unsigned long long>(store->content_hash(i)));
      }
      return 0;
    }

    // ---- unpack --------------------------------------------------------
    if (!unpack_pack.empty()) {
      if (out_dir.empty()) return usage();
      const auto store = TraceStore::open(unpack_pack);
      std::filesystem::create_directories(out_dir);
      for (std::size_t i = 0; i < store->size(); ++i) {
        const std::string path = out_dir + "/" + store->name(i) + ".csv";
        std::ofstream out(path);
        if (!out) {
          std::cerr << "cannot write " << path << "\n";
          return 1;
        }
        out << stored_trace_to_csv(*store, i);
      }
      std::printf("unpacked %zu trace(s) into %s\n", store->size(),
                  out_dir.c_str());
      return 0;
    }

    // ---- pack ----------------------------------------------------------
    if (sources.empty() || out_pack.empty()) return usage();

    TracePackWriter writer;
    for (const SourceTrace& s : sources) {
      writer.add_trace(s.name, s.samples, s.period_s);
    }
    if (variants > 0) {
      // Every source trace seeds `variants` statistically matched shapes;
      // seeds derive from (variant_seed, source index, variant index) so
      // the corpus is reproducible and every variant distinct.
      for (std::size_t si = 0; si < sources.size(); ++si) {
        const SourceTrace& s = sources[si];
        const TraceFit fit = fit_trace(s.samples, s.period_s);
        const double duration =
            variant_duration_s > 0.0
                ? variant_duration_s
                : static_cast<double>(s.samples.size()) * s.period_s;
        const auto n = static_cast<std::size_t>(
            std::ceil(duration / fit.sample_period_s));
        for (std::size_t v = 0; v < variants; ++v) {
          const std::uint64_t seed =
              derive_seed(derive_seed(variant_seed, si), v);
          writer.add_trace(s.name + "-v" + std::to_string(v),
                           synthesize_samples(fit, n == 0 ? 1 : n, seed),
                           fit.sample_period_s);
        }
      }
    }
    writer.write(out_pack);
    std::printf("packed %zu trace(s) (%zu unique column(s)) into %s\n",
                writer.size(), writer.unique_columns(), out_pack.c_str());
    return 0;
  } catch (const std::exception& e) {
    std::cerr << e.what() << "\n";
    return 1;
  }
}
