// Quickstart: build the Table I server, attach the paper's full control
// stack (adaptive PID fan + deadzone capper + rule coordination + adaptive
// set point + single-step scaling), run 30 minutes of the paper's square
// workload, and print a summary.
//
// Usage: quickstart [duration_seconds]
#include <cstdlib>
#include <iostream>

#include "core/policy_factory.hpp"
#include "core/solutions.hpp"
#include "sim/experiment.hpp"
#include "sim/simulation.hpp"
#include "workload/synthetic.hpp"

int main(int argc, char** argv) {
  using namespace fsc;

  double duration = 1800.0;
  if (argc > 1) duration = std::atof(argv[1]);
  if (duration <= 0.0) {
    std::cerr << "duration must be positive\n";
    return 1;
  }

  // 1. The plant: a Table I enterprise server with the non-ideal sensing
  //    chain (10 s lag, 1 degC quantization).
  Rng rng(2014);
  ServerParams server_params;  // all Table I defaults
  Server server(server_params, /*initial_fan_rpm=*/2000.0, rng);

  // 2. The workload: square wave 0.1 <-> 0.7 with Gaussian noise (sigma =
  //    0.04), exactly the paper's synthetic trace.
  SquareNoiseParams wl;
  wl.duration_s = duration;
  const auto workload = make_square_noise_workload(wl, rng);

  // 3. The controller: the full proposed solution (Table III last row),
  //    built through the shared policy registry.
  SolutionConfig cfg;
  const auto policy =
      PolicyFactory::instance().make("r-coord+a-tref+ss-fan", cfg);

  // 4. Run.
  SimulationParams sim;
  sim.duration_s = duration;
  sim.initial_utilization = 0.1;
  const SimulationResult result = run_simulation(server, *policy, *workload, sim);

  // 5. Report.
  std::cout << "=== quickstart: R-coord + A-Tref + SSfan on the Table I server ===\n";
  std::cout << "simulated time        : " << result.duration_s << " s\n";
  std::cout << "deadline violations   : " << result.deadline.violation_percent()
            << " %\n";
  std::cout << "fan energy            : " << result.fan_energy_joules / 1000.0
            << " kJ\n";
  std::cout << "cpu energy            : " << result.cpu_energy_joules / 1000.0
            << " kJ\n";
  std::cout << "mean junction temp    : " << result.junction_stats.mean()
            << " degC\n";
  std::cout << "max junction temp     : " << result.junction_stats.max()
            << " degC\n";
  std::cout << "time above 80 degC    : "
            << 100.0 * result.thermal_violation_fraction << " %\n";
  std::cout << "mean fan speed        : " << result.fan_speed_stats.mean()
            << " rpm\n";
  return 0;
}
