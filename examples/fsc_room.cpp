// fsc_room: the room-scale front end over the room/ subsystem.
//
// Runs a room of K racks (each a full coupled-rack plant: shared plenum +
// named RackCoordinator) in lockstep under a named RoomScheduler with
// cross-rack hot-aisle recirculation, and writes a JSON report, optionally
// a per-rack CSV.  Slots replay traces from --traces DIR (round-robin
// across the whole room, sorted by filename) or fall back to the default
// contended room scenario (heavy front half, light back half).
//
// Every flag parses into ONE fsc::ScenarioSpec and the engine is built
// exclusively through spec.build_room() — so any flag invocation has an
// exact JSON transcription: `--scenario run.json` replays it (the same
// file fsc_rack accepts when racks == 1), and the shared flags after
// --scenario override the file's values.
//
// Usage:
//   fsc_room [--scenario FILE.json] [--policy SCHED] [--coordinator COORD]
//            [--dtm POLICY]
//            [--racks K] [--slots N] [--traces DIR] [--threads N]
//            [--seed S] [--duration SECS] [--budget WATTS] [--step FRAC]
//            [--batched on|off] [--chunk N] [--executor on|off]
//            [--simd on|off|auto]
//            [--no-cross-plenum] [--no-plenum]
//            [--trace-out FILE.json] [--metrics-out FILE] [--metrics-every N]
//            [--progress]
//            [--out FILE.json] [--csv FILE.csv] [--list] [--list-policies]
//
//   --scenario     load a ScenarioSpec JSON file (see src/sim/scenario.hpp);
//                  its "faults" array schedules hardware faults, re-homed
//                  per rack and injected at coordination barriers
//   --policy       room scheduler name (default "static"); --list shows all
//   --coordinator  per-rack RackCoordinator name (default "independent")
//   --dtm          per-server DtmPolicy name (default the paper's full stack)
//   --budget       room CPU power budget in watts (0 = 85 % of aggregate max)
//   --step         fraction of the hot rack's load moved per migration
//   --batched      SoA batched physics (default on) vs the scalar
//                  one-task-per-server path — bit-identical, for A/B timing
//   --chunk        lanes per batch chunk, the shard unit threads
//                  parallelise over (0 = auto); bit-identical, for sweeps
//   --simd         explicitly vectorized plant kernel per rack (default
//                  off = the bit-identical scalar reference); FSC_SIMD
//                  overrides the width when enabled
//   --executor     persistent lockstep executor (default on) vs per-round
//                  ThreadPool submission — bit-identical, for A/B timing
//   --trace-out    Chrome/Perfetto trace-event JSON of the run (rounds,
//                  shards, scheduler calls, migration + fault instants) —
//                  load in https://ui.perfetto.dev; telemetry never
//                  perturbs the simulation (bit-identical with or without)
//   --metrics-out  periodic per-rack/room time-series (".json" = JSON
//                  array, else CSV), sampled every --metrics-every rounds
//   --progress     heartbeat on stderr (rounds/s, ETA, live violations)
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>

#include "cli_util.hpp"

#include "core/policy_factory.hpp"
#include "room/room_engine.hpp"
#include "sim/scenario.hpp"

namespace {

using fsc_cli::parse_positive;
using fsc_cli::ScenarioFlag;

int usage(const char* argv0) {
  std::cerr << "usage: " << argv0
            << " [--scenario FILE.json] [--policy SCHED] "
               "[--coordinator COORD] [--dtm POLICY]\n"
               "       [--racks K] [--slots N] [--traces DIR] [--threads N]\n"
               "       [--seed S] [--duration SECS] [--budget WATTS] "
               "[--step FRAC]\n"
               "       [--batched on|off] [--chunk N] [--executor on|off]\n"
               "       [--simd on|off|auto]\n"
               "       [--no-cross-plenum] [--no-plenum]\n"
               "       [--trace-out FILE.json] [--metrics-out FILE] "
               "[--metrics-every N]\n"
               "       [--progress] [--out FILE.json] [--csv FILE.csv] "
               "[--list] [--list-policies]\n";
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace fsc;

  ScenarioSpec spec;
  spec.racks = 4;  // room-scale default; --racks and --scenario override
  std::string out_path = "fsc_room_report.json";
  std::string csv_path;
  fsc_cli::ObsCli obs;

  for (int i = 1; i < argc; ++i) {
    switch (fsc_cli::consume_scenario_flag(spec, argc, argv, i)) {
      case ScenarioFlag::kConsumed: continue;
      case ScenarioFlag::kError: return usage(argv[0]);
      case ScenarioFlag::kNotMine: break;
    }
    const std::string arg = argv[i];
    const bool has_value = i + 1 < argc;
    if (arg == "--list" || arg == "--list-policies") {
      fsc_cli::print_policy_listing(std::cout);
      return 0;
    } else if (arg == "--no-cross-plenum") {
      spec.cross_plenum = false;
    } else if (arg == "--progress") {
      obs.progress = true;
    } else if (!has_value) {
      return usage(argv[0]);
    } else if (arg == "--policy") {
      spec.scheduler = argv[++i];
    } else if (arg == "--coordinator") {
      spec.coordinator = argv[++i];
    } else if (arg == "--racks") {
      if ((spec.racks = parse_positive(argv[++i])) == 0) return usage(argv[0]);
    } else if (arg == "--budget") {
      spec.room_budget_watts = std::atof(argv[++i]);
    } else if (arg == "--step") {
      spec.migration_step = std::atof(argv[++i]);
    } else if (arg == "--trace-out") {
      obs.trace_path = argv[++i];
    } else if (arg == "--metrics-out") {
      obs.metrics_path = argv[++i];
    } else if (arg == "--metrics-every") {
      if ((obs.metrics_every = parse_positive(argv[++i])) == 0) {
        return usage(argv[0]);
      }
    } else if (arg == "--out") {
      out_path = argv[++i];
    } else if (arg == "--csv") {
      csv_path = argv[++i];
    } else {
      std::cerr << "unknown argument '" << arg << "'\n";
      return usage(argv[0]);
    }
  }

  try {
    RoomParams params = spec.build_room();
    if (!spec.trace_dir.empty() && !params.racks.empty()) {
      std::cout << "loaded traces from " << spec.trace_dir << "\n";
    }
    const std::size_t threads = spec.resolve_threads();

    if (!obs.open(spec.duration_s, threads)) return 1;
    params.obs = obs.telemetry();

    const RoomEngine engine(params, threads);
    const auto wall_t0 = std::chrono::steady_clock::now();
    const RoomResult result = engine.run();
    const double wall_s = std::chrono::duration<double>(
                              std::chrono::steady_clock::now() - wall_t0)
                              .count();

    obs::RunManifest manifest = obs::RunManifest::collect();
    manifest.threads = threads;
    manifest.chunk = spec.chunk;
    manifest.seed = spec.seed;
    manifest.command = obs::command_line(argc, argv);
    manifest.wall_time_s = wall_s;
    const std::string manifest_json = manifest.to_json(4);

    const auto& factory = PolicyFactory::instance();
    std::cout << "=== fsc_room: " << spec.racks << " racks x " << spec.slots
              << " slots, scheduler '" << params.scheduler << "' ("
              << factory.describe_room_scheduler(params.scheduler) << "), "
              << threads << " thread(s) ===\n\n";
    std::cout << result.to_table();

    std::ofstream out(out_path);
    if (!out) {
      std::cerr << "cannot write " << out_path << "\n";
      return 1;
    }
    out << result.to_json(manifest_json);
    std::cout << "\nreport written to " << out_path << "\n";
    obs.finish(manifest_json);
    if (!csv_path.empty()) {
      std::ofstream csv(csv_path);
      if (!csv) {
        std::cerr << "cannot write " << csv_path << "\n";
        return 1;
      }
      csv << result.to_csv();
      std::cout << "per-rack CSV written to " << csv_path << "\n";
    }
  } catch (const std::exception& e) {
    std::cerr << "fsc_room: " << e.what() << "\n";
    return 1;
  }
  return 0;
}
