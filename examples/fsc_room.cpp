// fsc_room: the room-scale front end over the room/ subsystem.
//
// Runs a room of K racks (each a full coupled-rack plant: shared plenum +
// named RackCoordinator) in lockstep under a named RoomScheduler with
// cross-rack hot-aisle recirculation, and writes a JSON report, optionally
// a per-rack CSV.  Slots replay traces from --traces DIR (round-robin
// across the whole room, sorted by filename) or fall back to the default
// contended room scenario (heavy front half, light back half).
//
// Usage:
//   fsc_room [--policy SCHED] [--coordinator COORD] [--dtm POLICY]
//            [--racks K] [--slots N] [--traces DIR] [--threads N]
//            [--seed S] [--duration SECS] [--budget WATTS] [--step FRAC]
//            [--batched on|off] [--chunk N] [--executor on|off]
//            [--simd on|off|auto]
//            [--no-cross-plenum] [--no-plenum]
//            [--trace-out FILE.json] [--metrics-out FILE] [--metrics-every N]
//            [--progress]
//            [--out FILE.json] [--csv FILE.csv] [--list]
//
//   --policy       room scheduler name (default "static"); --list shows all
//   --coordinator  per-rack RackCoordinator name (default "independent")
//   --dtm          per-server DtmPolicy name (default the paper's full stack)
//   --budget       room CPU power budget in watts (0 = 85 % of aggregate max)
//   --step         fraction of the hot rack's load moved per migration
//   --batched      SoA batched physics (default on) vs the scalar
//                  one-task-per-server path — bit-identical, for A/B timing
//   --chunk        lanes per batch chunk, the shard unit threads
//                  parallelise over (0 = auto); bit-identical, for sweeps
//   --simd         explicitly vectorized plant kernel per rack (default
//                  off = the bit-identical scalar reference); FSC_SIMD
//                  overrides the width when enabled
//   --executor     persistent lockstep executor (default on) vs per-round
//                  ThreadPool submission — bit-identical, for A/B timing
//   --trace-out    Chrome/Perfetto trace-event JSON of the run (rounds,
//                  shards, scheduler calls, migration instants) — load in
//                  https://ui.perfetto.dev; telemetry never perturbs the
//                  simulation (bit-identical with or without)
//   --metrics-out  periodic per-rack/room time-series (".json" = JSON
//                  array, else CSV), sampled every --metrics-every rounds
//   --progress     heartbeat on stderr (rounds/s, ETA, live violations)
#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>

#include "cli_util.hpp"

#include "core/policy_factory.hpp"
#include "room/room_engine.hpp"
#include "workload/trace_io.hpp"

namespace {

using fsc_cli::parse_nonnegative;
using fsc_cli::parse_on_off;
using fsc_cli::parse_simd_mode;
using fsc_cli::parse_positive;

void print_names() {
  const auto& factory = fsc::PolicyFactory::instance();
  std::cout << "room schedulers:\n";
  for (const auto& name : factory.room_scheduler_names()) {
    std::cout << "  " << name << "  -  "
              << factory.describe_room_scheduler(name) << "\n";
  }
  std::cout << "rack coordinators:\n";
  for (const auto& name : factory.coordinator_names()) {
    std::cout << "  " << name << "  -  " << factory.describe_coordinator(name)
              << "\n";
  }
  std::cout << "dtm policies:\n";
  for (const auto& name : factory.names()) {
    std::cout << "  " << name << "  -  " << factory.describe(name) << "\n";
  }
}

int usage(const char* argv0) {
  std::cerr << "usage: " << argv0
            << " [--policy SCHED] [--coordinator COORD] [--dtm POLICY]\n"
               "       [--racks K] [--slots N] [--traces DIR] [--threads N]\n"
               "       [--seed S] [--duration SECS] [--budget WATTS] "
               "[--step FRAC]\n"
               "       [--batched on|off] [--chunk N] [--executor on|off]\n"
               "       [--simd on|off|auto]\n"
               "       [--no-cross-plenum] [--no-plenum]\n"
               "       [--trace-out FILE.json] [--metrics-out FILE] "
               "[--metrics-every N]\n"
               "       [--progress] [--out FILE.json] [--csv FILE.csv] "
               "[--list]\n";
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace fsc;

  std::string scheduler = "static";
  std::string coordinator;
  std::string dtm;
  std::string trace_dir;
  std::string out_path = "fsc_room_report.json";
  std::string csv_path;
  std::size_t num_racks = 4;
  std::size_t slots = 8;
  std::size_t threads = std::max(1u, std::thread::hardware_concurrency());
  std::uint64_t seed = 42;
  double duration_s = 900.0;
  double budget_watts = -1.0;
  double step = -1.0;
  bool cross_plenum = true;
  bool rack_plenum = true;
  bool batched = true;
  bool executor = true;
  fsc::simd::SimdMode simd = fsc::simd::SimdMode::kOff;
  std::size_t chunk = 0;
  fsc_cli::ObsCli obs;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const bool has_value = i + 1 < argc;
    if (arg == "--list") {
      print_names();
      return 0;
    } else if (arg == "--no-cross-plenum") {
      cross_plenum = false;
    } else if (arg == "--no-plenum") {
      rack_plenum = false;
    } else if (arg == "--progress") {
      obs.progress = true;
    } else if (!has_value) {
      return usage(argv[0]);
    } else if (arg == "--policy") {
      scheduler = argv[++i];
    } else if (arg == "--coordinator") {
      coordinator = argv[++i];
    } else if (arg == "--dtm") {
      dtm = argv[++i];
    } else if (arg == "--traces") {
      trace_dir = argv[++i];
    } else if (arg == "--racks") {
      if ((num_racks = parse_positive(argv[++i])) == 0) return usage(argv[0]);
    } else if (arg == "--slots") {
      if ((slots = parse_positive(argv[++i])) == 0) return usage(argv[0]);
    } else if (arg == "--threads") {
      if ((threads = parse_positive(argv[++i])) == 0) return usage(argv[0]);
    } else if (arg == "--seed") {
      seed = static_cast<std::uint64_t>(std::strtoull(argv[++i], nullptr, 10));
    } else if (arg == "--duration") {
      duration_s = std::atof(argv[++i]);
    } else if (arg == "--budget") {
      budget_watts = std::atof(argv[++i]);
    } else if (arg == "--step") {
      step = std::atof(argv[++i]);
    } else if (arg == "--batched") {
      if (!parse_on_off(argv[++i], batched)) return usage(argv[0]);
    } else if (arg == "--chunk") {
      if (!parse_nonnegative(argv[++i], chunk)) return usage(argv[0]);
    } else if (arg == "--executor") {
      if (!parse_on_off(argv[++i], executor)) return usage(argv[0]);
    } else if (arg == "--simd") {
      if (!parse_simd_mode(argv[++i], simd)) return usage(argv[0]);
    } else if (arg == "--trace-out") {
      obs.trace_path = argv[++i];
    } else if (arg == "--metrics-out") {
      obs.metrics_path = argv[++i];
    } else if (arg == "--metrics-every") {
      if ((obs.metrics_every = parse_positive(argv[++i])) == 0) {
        return usage(argv[0]);
      }
    } else if (arg == "--out") {
      out_path = argv[++i];
    } else if (arg == "--csv") {
      csv_path = argv[++i];
    } else {
      std::cerr << "unknown argument '" << arg << "'\n";
      return usage(argv[0]);
    }
  }
  if (duration_s <= 0.0) return usage(argv[0]);

  const auto& factory = PolicyFactory::instance();
  if (!factory.contains_room_scheduler(scheduler)) {
    std::cerr << "unknown room scheduler '" << scheduler << "'; known:";
    for (const auto& name : factory.room_scheduler_names()) {
      std::cerr << " " << name;
    }
    std::cerr << "\n";
    return 1;
  }

  try {
    RoomParams params = default_room_scenario(num_racks, seed, duration_s);
    params.scheduler = scheduler;
    params.cross_plenum_enabled = cross_plenum;
    params.executor = executor;
    if (budget_watts >= 0.0) {
      params.sched.room_power_budget_watts = budget_watts;
    }
    if (step > 0.0) params.sched.migration_step = step;
    std::vector<std::shared_ptr<const SampledWorkload>> traces;
    if (!trace_dir.empty()) {
      traces = load_trace_dir(trace_dir);
      std::cout << "loaded " << traces.size() << " trace(s) from " << trace_dir
                << "\n";
    }
    for (std::size_t r = 0; r < params.racks.size(); ++r) {
      CoupledRackParams& rack = params.racks[r];
      rack.rack.num_servers = slots;
      rack.plenum_enabled = rack_plenum;
      rack.batched = batched;
      rack.chunk = chunk;
      rack.simd = simd;
      if (!coordinator.empty()) rack.coordinator = coordinator;
      if (!dtm.empty()) rack.rack.policy = dtm;
      if (!traces.empty()) {
        // Round-robin across the whole room, not per rack, so a trace set
        // smaller than the room still lands on every rack differently.
        rack.rack.traces.clear();
        for (std::size_t s = 0; s < slots; ++s) {
          rack.rack.traces.push_back(traces[(r * slots + s) % traces.size()]);
        }
      }
    }

    if (!obs.open(duration_s, threads)) return 1;
    params.obs = obs.telemetry();

    const RoomEngine engine(params, threads);
    const auto wall_t0 = std::chrono::steady_clock::now();
    const RoomResult result = engine.run();
    const double wall_s = std::chrono::duration<double>(
                              std::chrono::steady_clock::now() - wall_t0)
                              .count();

    obs::RunManifest manifest = obs::RunManifest::collect();
    manifest.threads = threads;
    manifest.chunk = chunk;
    manifest.seed = seed;
    manifest.command = obs::command_line(argc, argv);
    manifest.wall_time_s = wall_s;
    const std::string manifest_json = manifest.to_json(4);

    std::cout << "=== fsc_room: " << num_racks << " racks x " << slots
              << " slots, scheduler '" << scheduler << "' ("
              << factory.describe_room_scheduler(scheduler) << "), " << threads
              << " thread(s) ===\n\n";
    std::cout << result.to_table();

    std::ofstream out(out_path);
    if (!out) {
      std::cerr << "cannot write " << out_path << "\n";
      return 1;
    }
    out << result.to_json(manifest_json);
    std::cout << "\nreport written to " << out_path << "\n";
    obs.finish(manifest_json);
    if (!csv_path.empty()) {
      std::ofstream csv(csv_path);
      if (!csv) {
        std::cerr << "cannot write " << csv_path << "\n";
        return 1;
      }
      csv << result.to_csv();
      std::cout << "per-rack CSV written to " << csv_path << "\n";
    }
  } catch (const std::exception& e) {
    std::cerr << "fsc_room: " << e.what() << "\n";
    return 1;
  }
  return 0;
}
