// room_day: simulate a day in a contended machine room — K racks, the
// front half heavily loaded, the back half idling — under each of the
// registered room schedulers, and print the per-rack tables side by side
// so the migration benefit is visible at a glance: the static assignment
// leaves the heavy racks violating deadlines while thermal-headroom moves
// their load into the cold aisle and power-aware re-packs against the
// room budget.
//
// Usage: room_day [num_racks] [threads] [duration_seconds] [scheduler]
//   With an explicit scheduler only that one runs; otherwise all three.
#include <cstdlib>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "core/policy_factory.hpp"
#include "room/room_engine.hpp"

int main(int argc, char** argv) {
  using namespace fsc;

  std::size_t num_racks = 4;
  std::size_t threads = std::max(1u, std::thread::hardware_concurrency());
  double duration_s = 3600.0;
  std::string only_scheduler;
  if (argc > 1) num_racks = static_cast<std::size_t>(std::atoll(argv[1]));
  if (argc > 2) threads = static_cast<std::size_t>(std::atoll(argv[2]));
  if (argc > 3) duration_s = std::atof(argv[3]);
  if (argc > 4) only_scheduler = argv[4];
  if (num_racks == 0 || threads == 0 || duration_s <= 0.0) {
    std::cerr << "usage: room_day [num_racks>0] [threads>0] [duration_s>0] "
                 "[scheduler]\n";
    return 1;
  }
  const auto& factory = PolicyFactory::instance();
  if (!only_scheduler.empty() &&
      !factory.contains_room_scheduler(only_scheduler)) {
    std::cerr << "unknown room scheduler '" << only_scheduler << "'; known:";
    for (const auto& name : factory.room_scheduler_names())
      std::cerr << " " << name;
    std::cerr << "\n";
    return 1;
  }

  const std::vector<std::string> schedulers =
      only_scheduler.empty() ? factory.room_scheduler_names()
                             : std::vector<std::string>{only_scheduler};

  for (const std::string& scheduler : schedulers) {
    RoomParams params = default_room_scenario(num_racks, 2014, duration_s);
    params.scheduler = scheduler;

    const RoomEngine engine(params, threads);
    const RoomResult result = engine.run();

    std::cout << "=== room_day: " << num_racks << " racks, scheduler '"
              << scheduler << "' ("
              << factory.describe_room_scheduler(scheduler) << "), " << threads
              << " thread(s) ===\n\n";
    std::cout << result.to_table() << "\n";
  }
  return 0;
}
