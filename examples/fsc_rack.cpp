// fsc_rack: the rack-scale front end over the coord/ subsystem.
//
// Runs a rack of N servers as one coupled plant (shared-plenum inlet
// coupling + a named RackCoordinator) and writes a JSON report, optionally
// a per-slot CSV.  Slots replay traces from --traces DIR (round-robin,
// sorted by filename) or fall back to the default contended synthetic
// scenario.
//
// Usage:
//   fsc_rack [--policy COORD] [--dtm POLICY] [--traces DIR] [--slots N]
//            [--threads N] [--seed S] [--duration SECS] [--budget WATTS]
//            [--zone K] [--batched on|off] [--chunk N] [--executor on|off]
//            [--simd on|off|auto]
//            [--trace-out FILE.json] [--metrics-out FILE] [--metrics-every N]
//            [--progress]
//            [--no-plenum] [--out FILE.json] [--csv FILE.csv] [--list]
//
//   --policy    coordinator name (default "independent"); --list shows all
//   --dtm       per-server DtmPolicy name (default the paper's full stack)
//   --budget    rack CPU power budget in watts (0 = 85 % of aggregate max)
//   --zone      slots per shared fan zone
//   --batched   SoA batched physics (default on) vs the scalar
//               one-task-per-server path — bit-identical, for A/B timing
//   --chunk     lanes per batch chunk, the shard unit threads parallelise
//               over (0 = auto); any value is bit-identical, for sweeps
//   --executor  persistent lockstep executor (default on) vs per-round
//               ThreadPool submission — bit-identical, for A/B timing
//   --simd      explicitly vectorized plant kernel (default off = the
//               bit-identical scalar reference); "on" forces the widest
//               supported width (FSC_SIMD=avx2|sse2|neon|scalar overrides),
//               "auto" enables it only on hosts with a vector unit
//   --trace-out Chrome/Perfetto trace-event JSON of the run (coordination
//               rounds, executor shards, plenum updates) — load the file
//               in https://ui.perfetto.dev; telemetry never perturbs the
//               simulation (bit-identical with or without)
//   --metrics-out  periodic rack time-series (".json" = JSON array, else
//               CSV), sampled every --metrics-every rounds
//   --progress  heartbeat on stderr (rounds/s, ETA, live violations)
#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>

#include "cli_util.hpp"

#include "coord/coupled_rack_engine.hpp"
#include "core/policy_factory.hpp"
#include "workload/trace_io.hpp"

namespace {

using fsc_cli::parse_nonnegative;
using fsc_cli::parse_on_off;
using fsc_cli::parse_simd_mode;
using fsc_cli::parse_positive;

void print_names() {
  const auto& factory = fsc::PolicyFactory::instance();
  std::cout << "coordinators:\n";
  for (const auto& name : factory.coordinator_names()) {
    std::cout << "  " << name << "  -  " << factory.describe_coordinator(name)
              << "\n";
  }
  std::cout << "dtm policies:\n";
  for (const auto& name : factory.names()) {
    std::cout << "  " << name << "  -  " << factory.describe(name) << "\n";
  }
}

int usage(const char* argv0) {
  std::cerr << "usage: " << argv0
            << " [--policy COORD] [--dtm POLICY] [--traces DIR] [--slots N]\n"
               "       [--threads N] [--seed S] [--duration SECS] "
               "[--budget WATTS]\n"
               "       [--zone K] [--batched on|off] [--chunk N] "
               "[--executor on|off]\n"
               "       [--simd on|off|auto]\n"
               "       [--trace-out FILE.json] [--metrics-out FILE] "
               "[--metrics-every N]\n"
               "       [--progress]\n"
               "       [--no-plenum] [--out FILE.json] [--csv FILE.csv] "
               "[--list]\n";
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace fsc;

  std::string coordinator = "independent";
  std::string dtm;
  std::string trace_dir;
  std::string out_path = "fsc_rack_report.json";
  std::string csv_path;
  std::size_t slots = 8;
  std::size_t threads = std::max(1u, std::thread::hardware_concurrency());
  std::uint64_t seed = 42;
  double duration_s = 900.0;
  double budget_watts = -1.0;
  std::size_t zone = 0;
  bool plenum = true;
  bool batched = true;
  bool executor = true;
  fsc::simd::SimdMode simd = fsc::simd::SimdMode::kOff;
  std::size_t chunk = 0;
  fsc_cli::ObsCli obs;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const bool has_value = i + 1 < argc;
    if (arg == "--list") {
      print_names();
      return 0;
    } else if (arg == "--no-plenum") {
      plenum = false;
    } else if (arg == "--progress") {
      obs.progress = true;
    } else if (!has_value) {
      return usage(argv[0]);
    } else if (arg == "--policy") {
      coordinator = argv[++i];
    } else if (arg == "--dtm") {
      dtm = argv[++i];
    } else if (arg == "--traces") {
      trace_dir = argv[++i];
    } else if (arg == "--slots") {
      if ((slots = parse_positive(argv[++i])) == 0) return usage(argv[0]);
    } else if (arg == "--threads") {
      if ((threads = parse_positive(argv[++i])) == 0) return usage(argv[0]);
    } else if (arg == "--seed") {
      seed = static_cast<std::uint64_t>(std::strtoull(argv[++i], nullptr, 10));
    } else if (arg == "--duration") {
      duration_s = std::atof(argv[++i]);
    } else if (arg == "--budget") {
      budget_watts = std::atof(argv[++i]);
    } else if (arg == "--zone") {
      if ((zone = parse_positive(argv[++i])) == 0) return usage(argv[0]);
    } else if (arg == "--batched") {
      if (!parse_on_off(argv[++i], batched)) return usage(argv[0]);
    } else if (arg == "--chunk") {
      if (!parse_nonnegative(argv[++i], chunk)) return usage(argv[0]);
    } else if (arg == "--executor") {
      if (!parse_on_off(argv[++i], executor)) return usage(argv[0]);
    } else if (arg == "--simd") {
      if (!parse_simd_mode(argv[++i], simd)) return usage(argv[0]);
    } else if (arg == "--trace-out") {
      obs.trace_path = argv[++i];
    } else if (arg == "--metrics-out") {
      obs.metrics_path = argv[++i];
    } else if (arg == "--metrics-every") {
      if ((obs.metrics_every = parse_positive(argv[++i])) == 0) {
        return usage(argv[0]);
      }
    } else if (arg == "--out") {
      out_path = argv[++i];
    } else if (arg == "--csv") {
      csv_path = argv[++i];
    } else {
      std::cerr << "unknown argument '" << arg << "'\n";
      return usage(argv[0]);
    }
  }
  if (slots == 0 || threads == 0 || duration_s <= 0.0) return usage(argv[0]);

  const auto& factory = PolicyFactory::instance();
  if (!factory.contains_coordinator(coordinator)) {
    std::cerr << "unknown coordinator '" << coordinator << "'; known:";
    for (const auto& name : factory.coordinator_names()) std::cerr << " " << name;
    std::cerr << "\n";
    return 1;
  }

  try {
    CoupledRackParams params = default_coupled_scenario(seed, duration_s);
    params.rack.num_servers = slots;
    params.coordinator = coordinator;
    params.plenum_enabled = plenum;
    params.batched = batched;
    params.chunk = chunk;
    params.executor = executor;
    params.simd = simd;
    if (!dtm.empty()) params.rack.policy = dtm;
    if (budget_watts >= 0.0) params.coord.rack_power_budget_watts = budget_watts;
    if (zone > 0) params.coord.fan_zone_size = zone;
    if (!trace_dir.empty()) {
      params.rack.traces = load_trace_dir(trace_dir);
      std::cout << "loaded " << params.rack.traces.size() << " trace(s) from "
                << trace_dir << "\n";
    }

    if (!obs.open(duration_s, threads)) return 1;
    params.obs = obs.telemetry();

    const CoupledRackEngine engine(params, threads);
    const auto wall_t0 = std::chrono::steady_clock::now();
    const CoupledRackResult result = engine.run();
    const double wall_s = std::chrono::duration<double>(
                              std::chrono::steady_clock::now() - wall_t0)
                              .count();

    obs::RunManifest manifest = obs::RunManifest::collect();
    manifest.threads = threads;
    manifest.chunk = chunk;
    manifest.seed = seed;
    manifest.command = obs::command_line(argc, argv);
    manifest.wall_time_s = wall_s;
    const std::string manifest_json = manifest.to_json(4);

    std::cout << "=== fsc_rack: " << slots << " slots, coordinator '"
              << coordinator << "' ("
              << factory.describe_coordinator(coordinator) << "), " << threads
              << " thread(s) ===\n\n";
    std::cout << result.to_table();

    std::ofstream out(out_path);
    if (!out) {
      std::cerr << "cannot write " << out_path << "\n";
      return 1;
    }
    out << result.to_json(manifest_json);
    std::cout << "\nreport written to " << out_path << "\n";
    obs.finish(manifest_json);
    if (!csv_path.empty()) {
      std::ofstream csv(csv_path);
      if (!csv) {
        std::cerr << "cannot write " << csv_path << "\n";
        return 1;
      }
      csv << result.to_csv();
      std::cout << "per-slot CSV written to " << csv_path << "\n";
    }
  } catch (const std::exception& e) {
    std::cerr << "fsc_rack: " << e.what() << "\n";
    return 1;
  }
  return 0;
}
