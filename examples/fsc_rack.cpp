// fsc_rack: the rack-scale front end over the coord/ subsystem.
//
// Runs a rack of N servers as one coupled plant (shared-plenum inlet
// coupling + a named RackCoordinator) and writes a JSON report, optionally
// a per-slot CSV.  Slots replay traces from --traces DIR (round-robin,
// sorted by filename) or fall back to the default contended synthetic
// scenario.
//
// Every flag parses into ONE fsc::ScenarioSpec and the engine is built
// exclusively through spec.build_rack() — so any flag invocation has an
// exact JSON transcription: `--scenario run.json` replays it, and the
// shared flags after --scenario override the file's values.
//
// Usage:
//   fsc_rack [--scenario FILE.json] [--policy COORD] [--dtm POLICY]
//            [--traces DIR] [--slots N]
//            [--threads N] [--seed S] [--duration SECS] [--budget WATTS]
//            [--zone K] [--batched on|off] [--chunk N] [--executor on|off]
//            [--simd on|off|auto]
//            [--trace-out FILE.json] [--metrics-out FILE] [--metrics-every N]
//            [--progress]
//            [--no-plenum] [--out FILE.json] [--csv FILE.csv]
//            [--list] [--list-policies]
//
//   --scenario  load a ScenarioSpec JSON file (see src/sim/scenario.hpp);
//               its "faults" array schedules hardware faults (sensor
//               stuck/dropped/noisy, fan degraded/seized, slot blackout)
//               injected deterministically at coordination barriers
//   --policy    coordinator name (default "independent"); --list shows all
//   --dtm       per-server DtmPolicy name (default the paper's full stack)
//   --budget    rack CPU power budget in watts (0 = 85 % of aggregate max)
//   --zone      slots per shared fan zone
//   --batched   SoA batched physics (default on) vs the scalar
//               one-task-per-server path — bit-identical, for A/B timing
//   --chunk     lanes per batch chunk, the shard unit threads parallelise
//               over (0 = auto); any value is bit-identical, for sweeps
//   --executor  persistent lockstep executor (default on) vs per-round
//               ThreadPool submission — bit-identical, for A/B timing
//   --simd      explicitly vectorized plant kernel (default off = the
//               bit-identical scalar reference); "on" forces the widest
//               supported width (FSC_SIMD=avx2|sse2|neon|scalar overrides),
//               "auto" enables it only on hosts with a vector unit
//   --trace-out Chrome/Perfetto trace-event JSON of the run (coordination
//               rounds, executor shards, plenum updates, fault instants) —
//               load the file in https://ui.perfetto.dev; telemetry never
//               perturbs the simulation (bit-identical with or without)
//   --metrics-out  periodic rack time-series (".json" = JSON array, else
//               CSV), sampled every --metrics-every rounds
//   --progress  heartbeat on stderr (rounds/s, ETA, live violations)
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>

#include "cli_util.hpp"

#include "coord/coupled_rack_engine.hpp"
#include "core/policy_factory.hpp"
#include "sim/scenario.hpp"

namespace {

using fsc_cli::parse_positive;
using fsc_cli::ScenarioFlag;

int usage(const char* argv0) {
  std::cerr << "usage: " << argv0
            << " [--scenario FILE.json] [--policy COORD] [--dtm POLICY]\n"
               "       [--traces DIR] [--slots N]\n"
               "       [--threads N] [--seed S] [--duration SECS] "
               "[--budget WATTS]\n"
               "       [--zone K] [--batched on|off] [--chunk N] "
               "[--executor on|off]\n"
               "       [--simd on|off|auto]\n"
               "       [--trace-out FILE.json] [--metrics-out FILE] "
               "[--metrics-every N]\n"
               "       [--progress]\n"
               "       [--no-plenum] [--out FILE.json] [--csv FILE.csv] "
               "[--list] [--list-policies]\n";
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace fsc;

  ScenarioSpec spec;
  std::string out_path = "fsc_rack_report.json";
  std::string csv_path;
  fsc_cli::ObsCli obs;

  for (int i = 1; i < argc; ++i) {
    switch (fsc_cli::consume_scenario_flag(spec, argc, argv, i)) {
      case ScenarioFlag::kConsumed: continue;
      case ScenarioFlag::kError: return usage(argv[0]);
      case ScenarioFlag::kNotMine: break;
    }
    const std::string arg = argv[i];
    const bool has_value = i + 1 < argc;
    if (arg == "--list" || arg == "--list-policies") {
      fsc_cli::print_policy_listing(std::cout);
      return 0;
    } else if (arg == "--progress") {
      obs.progress = true;
    } else if (!has_value) {
      return usage(argv[0]);
    } else if (arg == "--policy") {
      spec.coordinator = argv[++i];
    } else if (arg == "--budget") {
      spec.rack_budget_watts = std::atof(argv[++i]);
    } else if (arg == "--trace-out") {
      obs.trace_path = argv[++i];
    } else if (arg == "--metrics-out") {
      obs.metrics_path = argv[++i];
    } else if (arg == "--metrics-every") {
      if ((obs.metrics_every = parse_positive(argv[++i])) == 0) {
        return usage(argv[0]);
      }
    } else if (arg == "--out") {
      out_path = argv[++i];
    } else if (arg == "--csv") {
      csv_path = argv[++i];
    } else {
      std::cerr << "unknown argument '" << arg << "'\n";
      return usage(argv[0]);
    }
  }

  try {
    const CoupledRackParams params = [&] {
      CoupledRackParams p = spec.build_rack();
      if (!spec.trace_dir.empty()) {
        std::cout << "loaded " << p.rack.traces.size() << " trace(s) from "
                  << spec.trace_dir << "\n";
      }
      return p;
    }();
    const std::size_t threads = spec.resolve_threads();

    if (!obs.open(spec.duration_s, threads)) return 1;
    CoupledRackParams run_params = params;
    run_params.obs = obs.telemetry();

    const CoupledRackEngine engine(run_params, threads);
    const auto wall_t0 = std::chrono::steady_clock::now();
    const CoupledRackResult result = engine.run();
    const double wall_s = std::chrono::duration<double>(
                              std::chrono::steady_clock::now() - wall_t0)
                              .count();

    obs::RunManifest manifest = obs::RunManifest::collect();
    manifest.threads = threads;
    manifest.chunk = spec.chunk;
    manifest.seed = spec.seed;
    manifest.command = obs::command_line(argc, argv);
    manifest.wall_time_s = wall_s;
    const std::string manifest_json = manifest.to_json(4);

    const auto& factory = PolicyFactory::instance();
    std::cout << "=== fsc_rack: " << spec.slots << " slots, coordinator '"
              << run_params.coordinator << "' ("
              << factory.describe_coordinator(run_params.coordinator) << "), "
              << threads << " thread(s) ===\n\n";
    std::cout << result.to_table();

    std::ofstream out(out_path);
    if (!out) {
      std::cerr << "cannot write " << out_path << "\n";
      return 1;
    }
    out << result.to_json(manifest_json);
    std::cout << "\nreport written to " << out_path << "\n";
    obs.finish(manifest_json);
    if (!csv_path.empty()) {
      std::ofstream csv(csv_path);
      if (!csv) {
        std::cerr << "cannot write " << csv_path << "\n";
        return 1;
      }
      csv << result.to_csv();
      std::cout << "per-slot CSV written to " << csv_path << "\n";
    }
  } catch (const std::exception& e) {
    std::cerr << "fsc_rack: " << e.what() << "\n";
    return 1;
  }
  return 0;
}
