// datacenter_day: a 24-hour diurnal workload on the full proposed control
// stack, compared hour-by-hour against a static "always fast" fan policy
// (the conservative firmware the paper says vendors ship).
//
// Demonstrates the energy argument of the paper at day scale: the
// variable-speed controller tracks the diurnal load curve, spending fan
// power only when the workload needs cooling.
//
// Usage: datacenter_day [seed]
#include <cstdlib>
#include <iomanip>
#include <iostream>
#include <memory>

#include "core/policy_factory.hpp"
#include "core/solutions.hpp"
#include "sim/simulation.hpp"
#include "workload/synthetic.hpp"

int main(int argc, char** argv) {
  using namespace fsc;
  std::uint64_t seed = 99;
  if (argc > 1) seed = static_cast<std::uint64_t>(std::atoll(argv[1]));

  Rng rng(seed);
  DiurnalParams wl;  // trough 0.15 overnight, peak 0.85 mid-day
  const auto workload = make_diurnal_workload(wl, rng);

  SimulationParams sim;
  sim.duration_s = wl.duration_s;
  sim.initial_utilization = wl.base;
  sim.record_period_s = 60.0;

  // Run the proposed stack.
  SolutionConfig cfg;
  const auto policy = make_solution(SolutionKind::kRuleAdaptiveTrefSingleStep, cfg);
  Server server(ServerParams{}, cfg.initial_fan_rpm, rng);
  const auto proposed = run_simulation(server, *policy, *workload, sim);

  // Run the static-fan comparison (from the policy registry: fan pinned at
  // the worst-case-safe speed) on an identical plant and workload.  The
  // plant starts at the same speed the policy will command.
  Rng rng2(seed);
  const auto workload2 = make_diurnal_workload(wl, rng2);
  const auto static_policy = PolicyFactory::instance().make("static-fan", cfg);
  const double static_rpm = static_policy->step(DtmInputs{}).fan_speed_cmd;
  static_policy->reset();
  Server server2(ServerParams{}, static_rpm, rng2);
  const auto fixed = run_simulation(server2, *static_policy, *workload2, sim);

  std::cout << "=== datacenter_day: 24 h diurnal load, proposed stack vs "
               "static "
            << std::fixed << std::setprecision(0) << static_rpm
            << " rpm (worst-case-safe) fan ===\n\n";
  std::cout.unsetf(std::ios::fixed);
  std::cout << "hour  load   fan(rpm)  Tj(degC)  Tref\n";
  for (std::size_t i = 0; i < proposed.trace.size(); i += 60) {
    const auto& rec = proposed.trace[i];
    std::cout << std::fixed << std::setprecision(0) << std::setw(4)
              << rec.time_s / 3600.0 << std::setprecision(2) << std::setw(7)
              << rec.demand << std::setprecision(0) << std::setw(10)
              << rec.fan_cmd_rpm << std::setprecision(1) << std::setw(9)
              << rec.junction_celsius << std::setw(7) << rec.reference_celsius
              << "\n";
  }
  std::cout.unsetf(std::ios::fixed);

  const double saved = fixed.fan_energy_joules - proposed.fan_energy_joules;
  std::cout << "\n--- day summary ---\n" << std::setprecision(4);
  std::cout << "proposed: fan energy " << proposed.fan_energy_joules / 1000.0
            << " kJ, max Tj " << proposed.junction_stats.max()
            << " degC, deadline violations "
            << proposed.deadline.violation_percent() << " %\n";
  std::cout << "static  : fan energy " << fixed.fan_energy_joules / 1000.0
            << " kJ, max Tj " << fixed.junction_stats.max() << " degC\n";
  std::cout << "fan energy saved: " << 100.0 * saved / fixed.fan_energy_joules
            << " % (" << saved / 1000.0 << " kJ per server-day)\n";
  return 0;
}
