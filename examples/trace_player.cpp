// trace_player: replay a CSV utilization trace (columns: time,utilization)
// through any of the five Table III control solutions, writing the full
// simulation trace to a CSV for external plotting.
//
// Usage:
//   trace_player <input_trace.csv> [solution 0-4] [output.csv]
//
// With no arguments, a demonstration trace is generated, played, and both
// files are written to the current directory.
#include <fstream>
#include <iostream>
#include <string>

#include "core/solutions.hpp"
#include "sim/simulation.hpp"
#include "workload/synthetic.hpp"
#include "workload/trace_io.hpp"

int main(int argc, char** argv) {
  using namespace fsc;

  std::string input = argc > 1 ? argv[1] : "";
  const int solution_idx = argc > 2 ? std::atoi(argv[2]) : 4;
  const std::string output = argc > 3 ? argv[3] : "trace_player_output.csv";

  if (solution_idx < 0 || solution_idx > 4) {
    std::cerr << "solution index must be 0..4:\n";
    for (SolutionKind k : all_solutions()) {
      std::cerr << "  " << static_cast<int>(k) << " = " << to_string(k) << "\n";
    }
    return 1;
  }

  Rng rng(7);
  std::unique_ptr<SampledWorkload> workload;
  if (input.empty()) {
    // Generate a demonstration trace: the paper's square + noise + spikes.
    SpikyParams p;
    p.base.duration_s = 1800.0;
    p.base.period_s = 400.0;
    workload = make_spiky_workload(p, rng);
    input = "trace_player_input.csv";
    save_workload(*workload, p.base.duration_s, 1.0, input);
    std::cout << "generated demonstration trace: " << input << "\n";
  } else {
    try {
      workload = load_workload(input);
    } catch (const std::exception& e) {
      std::cerr << "cannot load trace: " << e.what() << "\n";
      return 1;
    }
  }

  const auto kind = all_solutions()[static_cast<std::size_t>(solution_idx)];
  SolutionConfig cfg;
  const auto policy = make_solution(kind, cfg);
  Server server(ServerParams{}, cfg.initial_fan_rpm, rng);

  SimulationParams sim;
  sim.duration_s = workload->duration();
  sim.initial_utilization = workload->demand(0.0);
  const auto result = run_simulation(server, *policy, *workload, sim);

  std::ofstream out(output);
  if (!out) {
    std::cerr << "cannot open output: " << output << "\n";
    return 1;
  }
  out << trace_to_csv(result.trace);

  std::cout << "=== trace_player ===\n";
  std::cout << "input trace       : " << input << " (" << workload->size()
            << " samples, " << workload->duration() << " s)\n";
  std::cout << "solution          : " << to_string(kind) << "\n";
  std::cout << "output            : " << output << " (" << result.trace.size()
            << " rows)\n";
  std::cout << "deadline violation: " << result.deadline.violation_percent()
            << " %\n";
  std::cout << "fan energy        : " << result.fan_energy_joules / 1000.0
            << " kJ\n";
  std::cout << "max junction      : " << result.junction_stats.max() << " degC\n";
  return 0;
}
