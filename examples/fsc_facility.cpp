// fsc_facility: the facility-scale front end over the facility/ subsystem.
//
// Runs K rooms (each a full room: racks under a RoomScheduler with
// cross-rack recirculation) in lockstep against one shared cooling plant,
// synchronized only at facility coordination barriers, and writes a JSON
// report, optionally a per-room CSV.  The two-level hierarchical executor
// (default) gives each room its own worker group with a private barrier
// and a topology-aware core range; --two-level off runs the flat
// single-barrier baseline — bit-identical, for A/B timing.
//
// Every flag parses into ONE fsc::ScenarioSpec and the engine is built
// exclusively through spec.build_facility() — so any flag invocation has
// an exact JSON transcription: `--scenario run.json` replays it, and the
// shared flags after --scenario override the file's values.
//
// Usage:
//   fsc_facility [--scenario FILE.json] [--rooms K] [--racks R] [--slots N]
//                [--policy SCHED] [--coordinator COORD] [--dtm POLICY]
//                [--traces DIR] [--threads N] [--seed S] [--duration SECS]
//                [--plant-watts W] [--supply-amplitude C]
//                [--facility-period S] [--two-level on|off] [--no-pin]
//                [--budget WATTS] [--step FRAC]
//                [--batched on|off] [--chunk N] [--executor on|off]
//                [--simd on|off|auto] [--no-cross-plenum] [--no-plenum]
//                [--trace-out FILE.json] [--metrics-out FILE]
//                [--metrics-every N] [--progress]
//                [--out FILE.json] [--csv FILE.csv] [--list-policies]
//
//   --rooms            rooms in the facility (default 2)
//   --plant-watts      shared cooling capacity in watts; < 0 (default)
//                      = unconstrained, a provable identity with the
//                      standalone rooms
//   --supply-amplitude diurnal supply-air peak offset in celsius
//                      (economizer/weather profile; 0 = flat)
//   --facility-period  simulated seconds between facility barriers; must
//                      be a whole multiple of the rooms' coordination
//                      period (<= 0 = every room round)
//   --two-level        hierarchical per-room worker groups (default on)
//                      vs the flat single-barrier executor — bit-identical
//   --no-pin           disable topology-aware worker placement
//   --trace-out        Perfetto trace: facility.round / facility.room_rounds
//                      / facility.coordinate spans over every room's rounds
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>

#include "cli_util.hpp"

#include "core/policy_factory.hpp"
#include "facility/facility_engine.hpp"
#include "sim/scenario.hpp"
#include "util/cpu_features.hpp"

namespace {

using fsc_cli::parse_positive;
using fsc_cli::ScenarioFlag;

int usage(const char* argv0) {
  std::cerr << "usage: " << argv0
            << " [--scenario FILE.json] [--rooms K] [--racks R] [--slots N]\n"
               "       [--policy SCHED] [--coordinator COORD] [--dtm POLICY]\n"
               "       [--traces DIR] [--threads N] [--seed S] "
               "[--duration SECS]\n"
               "       [--plant-watts W] [--supply-amplitude C] "
               "[--facility-period S]\n"
               "       [--two-level on|off] [--no-pin] [--budget WATTS] "
               "[--step FRAC]\n"
               "       [--batched on|off] [--chunk N] [--executor on|off]\n"
               "       [--simd on|off|auto] [--no-cross-plenum] "
               "[--no-plenum]\n"
               "       [--trace-out FILE.json] [--metrics-out FILE] "
               "[--metrics-every N]\n"
               "       [--progress] [--out FILE.json] [--csv FILE.csv] "
               "[--list-policies]\n";
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace fsc;

  ScenarioSpec spec;
  spec.rooms = 2;  // facility-scale defaults; flags and --scenario override
  spec.racks = 4;
  bool pin_topology = true;
  std::string out_path = "fsc_facility_report.json";
  std::string csv_path;
  fsc_cli::ObsCli obs;

  for (int i = 1; i < argc; ++i) {
    switch (fsc_cli::consume_scenario_flag(spec, argc, argv, i)) {
      case ScenarioFlag::kConsumed: continue;
      case ScenarioFlag::kError: return usage(argv[0]);
      case ScenarioFlag::kNotMine: break;
    }
    const std::string arg = argv[i];
    const bool has_value = i + 1 < argc;
    if (arg == "--list" || arg == "--list-policies") {
      fsc_cli::print_policy_listing(std::cout);
      return 0;
    } else if (arg == "--no-cross-plenum") {
      spec.cross_plenum = false;
    } else if (arg == "--no-pin") {
      pin_topology = false;
    } else if (arg == "--progress") {
      obs.progress = true;
    } else if (!has_value) {
      return usage(argv[0]);
    } else if (arg == "--policy") {
      spec.scheduler = argv[++i];
    } else if (arg == "--coordinator") {
      spec.coordinator = argv[++i];
    } else if (arg == "--racks") {
      if ((spec.racks = parse_positive(argv[++i])) == 0) return usage(argv[0]);
    } else if (arg == "--budget") {
      spec.room_budget_watts = std::atof(argv[++i]);
    } else if (arg == "--step") {
      spec.migration_step = std::atof(argv[++i]);
    } else if (arg == "--trace-out") {
      obs.trace_path = argv[++i];
    } else if (arg == "--metrics-out") {
      obs.metrics_path = argv[++i];
    } else if (arg == "--metrics-every") {
      if ((obs.metrics_every = parse_positive(argv[++i])) == 0) {
        return usage(argv[0]);
      }
    } else if (arg == "--out") {
      out_path = argv[++i];
    } else if (arg == "--csv") {
      csv_path = argv[++i];
    } else {
      std::cerr << "unknown argument '" << arg << "'\n";
      return usage(argv[0]);
    }
  }

  try {
    FacilityParams params = spec.build_facility();
    params.pin_topology = pin_topology;
    if (!spec.trace_dir.empty()) {
      std::cout << "loaded traces from " << spec.trace_dir << "\n";
    }
    const std::size_t threads = spec.resolve_threads();

    if (!obs.open(spec.duration_s, threads)) return 1;
    params.obs = obs.telemetry();

    const FacilityEngine engine(std::move(params), threads);
    const auto wall_t0 = std::chrono::steady_clock::now();
    const FacilityResult result = engine.run();
    const double wall_s = std::chrono::duration<double>(
                              std::chrono::steady_clock::now() - wall_t0)
                              .count();

    obs::RunManifest manifest = obs::RunManifest::collect();
    manifest.threads = threads;
    manifest.chunk = spec.chunk;
    manifest.seed = spec.seed;
    manifest.command = obs::command_line(argc, argv);
    manifest.wall_time_s = wall_s;
    const std::string manifest_json = manifest.to_json(4);

    std::cout << "=== fsc_facility: " << spec.rooms << " rooms x "
              << spec.racks << " racks x " << spec.slots << " slots, "
              << (engine.params().two_level ? "two-level" : "flat")
              << " executor, " << threads << " thread(s) ===\n";
    std::cout << "topology: " << cpu_topology_line() << "\n\n";
    std::cout << result.to_table();

    std::ofstream out(out_path);
    if (!out) {
      std::cerr << "cannot write " << out_path << "\n";
      return 1;
    }
    out << result.to_json(manifest_json);
    std::cout << "\nreport written to " << out_path << "\n";
    obs.finish(manifest_json);
    if (!csv_path.empty()) {
      std::ofstream csv(csv_path);
      if (!csv) {
        std::cerr << "cannot write " << csv_path << "\n";
        return 1;
      }
      csv << result.to_csv();
      std::cout << "per-room CSV written to " << csv_path << "\n";
    }
  } catch (const std::exception& e) {
    std::cerr << "fsc_facility: " << e.what() << "\n";
    return 1;
  }
  return 0;
}
