// Small flag-parsing helpers shared by the CLI front ends (fsc_rack,
// fsc_room) so fixes to the parsing land in one place.
#pragma once

#include <cstddef>
#include <cstdlib>
#include <cstring>

#include "batch/simd/dispatch.hpp"

namespace fsc_cli {

/// Parse a strictly positive integer flag value; returns 0 on anything
/// else (including negatives, which would otherwise wrap through the
/// size_t cast into absurd allocation sizes).
inline std::size_t parse_positive(const char* text) {
  char* end = nullptr;
  const long long v = std::strtoll(text, &end, 10);
  if (end == text || *end != '\0' || v <= 0) return 0;
  return static_cast<std::size_t>(v);
}

/// Parse a non-negative integer flag value ("--chunk N", where 0 means
/// "auto") into `out`.  Returns false on anything else — including bare
/// negatives, which would otherwise wrap through the size_t cast — so the
/// caller can fall through to usage().
inline bool parse_nonnegative(const char* text, std::size_t& out) {
  char* end = nullptr;
  const long long v = std::strtoll(text, &end, 10);
  if (end == text || *end != '\0' || v < 0) return false;
  out = static_cast<std::size_t>(v);
  return true;
}

/// Parse an on/off flag value ("--batched on|off") into `out`.  Returns
/// false on anything else so the caller can fall through to usage().
inline bool parse_on_off(const char* text, bool& out) {
  if (std::strcmp(text, "on") == 0) {
    out = true;
    return true;
  }
  if (std::strcmp(text, "off") == 0) {
    out = false;
    return true;
  }
  return false;
}

/// Parse a SIMD mode flag value ("--simd on|off|auto") into `out`.
/// Returns false on anything else so the caller can fall through to
/// usage().  Width selection within "on"/"auto" belongs to FSC_SIMD.
inline bool parse_simd_mode(const char* text, fsc::simd::SimdMode& out) {
  if (std::strcmp(text, "on") == 0) {
    out = fsc::simd::SimdMode::kOn;
    return true;
  }
  if (std::strcmp(text, "off") == 0) {
    out = fsc::simd::SimdMode::kOff;
    return true;
  }
  if (std::strcmp(text, "auto") == 0) {
    out = fsc::simd::SimdMode::kAuto;
    return true;
  }
  return false;
}

}  // namespace fsc_cli
