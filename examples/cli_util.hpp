// Small flag-parsing helpers shared by the CLI front ends (fsc_rack,
// fsc_room) so fixes to the parsing land in one place.  Both CLIs parse
// their flags into ONE fsc::ScenarioSpec (consume_scenario_flag covers the
// shared vocabulary, the per-CLI loops only the scale-specific spellings)
// and build engines exclusively through spec.build_rack()/build_room() —
// hand-assembly of engine params does not belong in examples/.
#pragma once

#include <cstddef>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <memory>
#include <string>

#include "batch/simd/dispatch.hpp"
#include "core/policy_factory.hpp"
#include "obs/manifest.hpp"
#include "obs/obs.hpp"
#include "obs/progress.hpp"
#include "obs/snapshot.hpp"
#include "sim/scenario.hpp"

namespace fsc_cli {

/// Parse a strictly positive integer flag value; returns 0 on anything
/// else (including negatives, which would otherwise wrap through the
/// size_t cast into absurd allocation sizes).
inline std::size_t parse_positive(const char* text) {
  char* end = nullptr;
  const long long v = std::strtoll(text, &end, 10);
  if (end == text || *end != '\0' || v <= 0) return 0;
  return static_cast<std::size_t>(v);
}

/// Parse a non-negative integer flag value ("--chunk N", where 0 means
/// "auto") into `out`.  Returns false on anything else — including bare
/// negatives, which would otherwise wrap through the size_t cast — so the
/// caller can fall through to usage().
inline bool parse_nonnegative(const char* text, std::size_t& out) {
  char* end = nullptr;
  const long long v = std::strtoll(text, &end, 10);
  if (end == text || *end != '\0' || v < 0) return false;
  out = static_cast<std::size_t>(v);
  return true;
}

/// Parse an on/off flag value ("--batched on|off") into `out`.  Returns
/// false on anything else so the caller can fall through to usage().
inline bool parse_on_off(const char* text, bool& out) {
  if (std::strcmp(text, "on") == 0) {
    out = true;
    return true;
  }
  if (std::strcmp(text, "off") == 0) {
    out = false;
    return true;
  }
  return false;
}

/// Parse a SIMD mode flag value ("--simd on|off|auto") into `out`.
/// Returns false on anything else so the caller can fall through to
/// usage().  Width selection within "on"/"auto" belongs to FSC_SIMD.
inline bool parse_simd_mode(const char* text, fsc::simd::SimdMode& out) {
  if (std::strcmp(text, "on") == 0) {
    out = fsc::simd::SimdMode::kOn;
    return true;
  }
  if (std::strcmp(text, "off") == 0) {
    out = fsc::simd::SimdMode::kOff;
    return true;
  }
  if (std::strcmp(text, "auto") == 0) {
    out = fsc::simd::SimdMode::kAuto;
    return true;
  }
  return false;
}

/// Outcome of offering one argv slot to the shared scenario-flag parser.
enum class ScenarioFlag {
  kNotMine,   ///< not a shared scenario flag; the caller's loop handles it
  kConsumed,  ///< handled (the parser advanced `i` past any value)
  kError,     ///< recognized but the value was malformed: go to usage()
};

/// Try to consume argv[i] as one of the scenario flags BOTH CLIs share:
///
///   --scenario FILE   load a ScenarioSpec JSON file (sim/scenario.hpp);
///                     flags AFTER it override the file's values
///   --dtm POLICY --traces DIR --trace-pack FILE --slots N --threads N
///   --seed S --duration SECS --zone K --batched on|off --chunk N
///   --executor on|off --gather on|off --simd on|off|auto --no-plenum
///   --rooms N --plant-watts W --supply-amplitude C --facility-period S
///   --two-level on|off   (facility-scale; ignored by build_rack/build_room)
///
/// On kError a note naming the flag is printed to stderr.  Scenario-file
/// load failures (missing file, bad JSON, unknown key) also print the
/// underlying reason.
inline ScenarioFlag consume_scenario_flag(fsc::ScenarioSpec& spec, int argc,
                                          char** argv, int& i) {
  const std::string arg = argv[i];
  if (arg == "--no-plenum") {
    spec.plenum = false;
    return ScenarioFlag::kConsumed;
  }
  const bool has_value = i + 1 < argc;
  const auto bad = [&arg](const char* why) {
    std::cerr << arg << ": " << why << "\n";
    return ScenarioFlag::kError;
  };
  if (arg == "--scenario") {
    if (!has_value) return bad("expected a file path");
    try {
      spec = fsc::ScenarioSpec::from_json_file(argv[++i]);
    } catch (const std::exception& e) {
      std::cerr << e.what() << "\n";
      return ScenarioFlag::kError;
    }
    return ScenarioFlag::kConsumed;
  }
  if (arg == "--dtm") {
    if (!has_value) return bad("expected a policy name");
    spec.dtm = argv[++i];
    return ScenarioFlag::kConsumed;
  }
  if (arg == "--traces") {
    if (!has_value) return bad("expected a directory");
    spec.trace_dir = argv[++i];
    return ScenarioFlag::kConsumed;
  }
  if (arg == "--trace-pack") {
    if (!has_value) return bad("expected a .fst pack file");
    spec.trace_pack = argv[++i];
    return ScenarioFlag::kConsumed;
  }
  if (arg == "--slots") {
    if (!has_value || (spec.slots = parse_positive(argv[++i])) == 0) {
      return bad("expected a positive integer");
    }
    return ScenarioFlag::kConsumed;
  }
  if (arg == "--threads") {
    if (!has_value || (spec.threads = parse_positive(argv[++i])) == 0) {
      return bad("expected a positive integer");
    }
    return ScenarioFlag::kConsumed;
  }
  if (arg == "--seed") {
    if (!has_value) return bad("expected an integer seed");
    spec.seed =
        static_cast<std::uint64_t>(std::strtoull(argv[++i], nullptr, 10));
    return ScenarioFlag::kConsumed;
  }
  if (arg == "--duration") {
    if (!has_value || (spec.duration_s = std::atof(argv[++i])) <= 0.0) {
      return bad("expected a positive duration in seconds");
    }
    return ScenarioFlag::kConsumed;
  }
  if (arg == "--zone") {
    if (!has_value || (spec.fan_zone = parse_positive(argv[++i])) == 0) {
      return bad("expected a positive integer");
    }
    return ScenarioFlag::kConsumed;
  }
  if (arg == "--batched") {
    if (!has_value || !parse_on_off(argv[++i], spec.batched)) {
      return bad("expected on|off");
    }
    return ScenarioFlag::kConsumed;
  }
  if (arg == "--chunk") {
    if (!has_value || !parse_nonnegative(argv[++i], spec.chunk)) {
      return bad("expected a non-negative integer");
    }
    return ScenarioFlag::kConsumed;
  }
  if (arg == "--executor") {
    if (!has_value || !parse_on_off(argv[++i], spec.executor)) {
      return bad("expected on|off");
    }
    return ScenarioFlag::kConsumed;
  }
  if (arg == "--gather") {
    if (!has_value || !parse_on_off(argv[++i], spec.gather)) {
      return bad("expected on|off");
    }
    return ScenarioFlag::kConsumed;
  }
  if (arg == "--simd") {
    if (!has_value || !parse_simd_mode(argv[++i], spec.simd)) {
      return bad("expected on|off|auto");
    }
    return ScenarioFlag::kConsumed;
  }
  if (arg == "--rooms") {
    if (!has_value || (spec.rooms = parse_positive(argv[++i])) == 0) {
      return bad("expected a positive integer");
    }
    return ScenarioFlag::kConsumed;
  }
  if (arg == "--plant-watts") {
    if (!has_value) return bad("expected a capacity in watts (< 0 = infinite)");
    spec.plant_capacity_watts = std::atof(argv[++i]);
    return ScenarioFlag::kConsumed;
  }
  if (arg == "--supply-amplitude") {
    if (!has_value || (spec.supply_amplitude_c = std::atof(argv[++i])) < 0.0) {
      return bad("expected a non-negative offset in celsius");
    }
    return ScenarioFlag::kConsumed;
  }
  if (arg == "--facility-period") {
    if (!has_value) return bad("expected a period in seconds (<= 0 = every round)");
    spec.facility_period_s = std::atof(argv[++i]);
    return ScenarioFlag::kConsumed;
  }
  if (arg == "--two-level") {
    if (!has_value || !parse_on_off(argv[++i], spec.two_level)) {
      return bad("expected on|off");
    }
    return ScenarioFlag::kConsumed;
  }
  return ScenarioFlag::kNotMine;
}

/// The `--list-policies` view: every registry tier with descriptions, in
/// registration order (one Registry<T> behind all three, so the format is
/// uniform by construction).
inline void print_policy_listing(std::ostream& os) {
  const auto& factory = fsc::PolicyFactory::instance();
  os << "dtm policies:\n";
  for (const auto& e : factory.list_policies()) {
    os << "  " << e.name << "  -  " << e.description << "\n";
  }
  os << "rack coordinators:\n";
  for (const auto& e : factory.list_coordinators()) {
    os << "  " << e.name << "  -  " << e.description << "\n";
  }
  os << "room schedulers:\n";
  for (const auto& e : factory.list_room_schedulers()) {
    os << "  " << e.name << "  -  " << e.description << "\n";
  }
}

/// Observability flag state + sink ownership shared by fsc_rack/fsc_room:
/// the flag loop fills the public fields (--trace-out, --metrics-out,
/// --metrics-every, --progress), open() builds the sinks once the run
/// shape is known, telemetry() is dropped into params.obs, and finish()
/// (after the run) writes the trace file and reports where things went.
class ObsCli {
 public:
  std::string trace_path;    ///< --trace-out FILE (Perfetto JSON)
  std::string metrics_path;  ///< --metrics-out FILE (.json array, else CSV)
  std::size_t metrics_every = 10;  ///< --metrics-every N (rounds per sample)
  bool progress = false;           ///< --progress heartbeat on stderr

  bool active() const noexcept {
    return !trace_path.empty() || !metrics_path.empty() || progress;
  }

  /// Build the requested sinks.  `duration_s` feeds the progress ETA,
  /// `threads` sizes the registry's per-shard counter slots.  Returns
  /// false (with a note on stderr) when an output file cannot be opened.
  bool open(double duration_s, std::size_t threads) {
    if (!active()) return true;
#if !FSC_OBS_ENABLED
    std::cerr << "note: this binary was built with -DFSC_OBS=OFF; the "
                 "telemetry hook sites are compiled out, so --trace-out/"
                 "--metrics-out/--progress outputs will be empty\n";
#endif
    metrics_ = std::make_unique<fsc::obs::MetricsRegistry>(threads);
    if (!trace_path.empty()) {
      trace_ = std::make_unique<fsc::obs::TraceRecorder>();
    }
    if (!metrics_path.empty()) {
      exporter_ = std::make_unique<fsc::obs::SnapshotExporter>(metrics_path,
                                                               metrics_every);
      if (!exporter_->ok()) {
        std::cerr << "cannot write " << metrics_path << "\n";
        return false;
      }
    }
    if (progress) {
      progress_ = std::make_unique<fsc::obs::ProgressMeter>(duration_s);
    }
    return true;
  }

  fsc::obs::Telemetry telemetry() noexcept {
    fsc::obs::Telemetry t;
    t.metrics = metrics_.get();
    t.trace = trace_.get();
    t.snapshot = exporter_.get();
    t.progress = progress_.get();
    return t;
  }

  /// Post-run: write the trace (embedding the run manifest), close the
  /// time-series, and print the final counter snapshot.  `manifest_json`
  /// is the same object the report embeds (RunManifest::to_json).
  void finish(const std::string& manifest_json) {
    if (exporter_) {
      exporter_->close();
      std::cout << "metrics time-series written to " << metrics_path << "\n";
    }
    if (trace_ && trace_->write_json_file(trace_path, manifest_json)) {
      std::cout << "trace written to " << trace_path << " ("
                << trace_->recorded_events() << " events";
      if (trace_->dropped_events() > 0) {
        std::cout << ", " << trace_->dropped_events() << " dropped";
      }
      std::cout << ")\n";
    }
    if (metrics_ && (trace_ || exporter_)) {
      std::cout << "telemetry counters:\n" << metrics_->to_json() << "\n";
    }
  }

 private:
  std::unique_ptr<fsc::obs::MetricsRegistry> metrics_;
  std::unique_ptr<fsc::obs::TraceRecorder> trace_;
  std::unique_ptr<fsc::obs::SnapshotExporter> exporter_;
  std::unique_ptr<fsc::obs::ProgressMeter> progress_;
};

}  // namespace fsc_cli
